"""Unit tests for the predictability visualization tooling."""

import pytest

from repro.analysis.predictability import (
    entropy_timeline,
    per_file_predictability,
    predictability_heatmap,
    profile_sequence,
)
from repro.errors import AnalysisError


class TestEntropyTimeline:
    def test_phase_change_visible(self):
        # Deterministic phase then a noisy phase: the timeline must
        # show low entropy first, higher later.
        import random

        rng = random.Random(0)
        deterministic = ["a", "b", "c", "d"] * 250
        noisy = [f"n{rng.randrange(40)}" for _ in range(1000)]
        # Repeat the noisy alphabet so files repeat (non-repeats are
        # excluded from the metric).
        noisy = noisy + noisy
        samples = entropy_timeline(deterministic + noisy, window=500)
        first = samples[0][1]
        last = samples[-1][1]
        assert first < 0.1
        assert last > 1.0

    def test_sample_positions(self):
        samples = entropy_timeline(["a", "b"] * 500, window=200)
        starts = [start for start, _ in samples]
        assert starts[0] == 0
        assert all(b - a == 200 for a, b in zip(starts, starts[1:]))

    def test_stride_overlap(self):
        dense = entropy_timeline(["a", "b"] * 500, window=200, stride=100)
        sparse = entropy_timeline(["a", "b"] * 500, window=200)
        assert len(dense) > len(sparse)

    def test_rejects_bad_window(self):
        with pytest.raises(AnalysisError):
            entropy_timeline(["a", "b"], window=1)
        with pytest.raises(AnalysisError):
            entropy_timeline(["a", "b"], window=5, stride=-1)

    def test_short_sequence(self):
        samples = entropy_timeline(["a", "b", "a"], window=10)
        assert len(samples) == 1

    def test_window_larger_than_trace_yields_one_truncated_sample(self):
        sequence = ["a", "b"] * 4
        samples = entropy_timeline(sequence, window=1000)
        assert len(samples) == 1
        start, value = samples[0]
        assert start == 0
        # The single sample covers the whole (shorter-than-window)
        # trace, so it must agree with a perfectly fitted window.
        assert value == entropy_timeline(sequence, window=len(sequence))[0][1]

    def test_stride_beyond_window_samples_disjoint_excerpts(self):
        sequence = ["a", "b"] * 500
        samples = entropy_timeline(sequence, window=100, stride=400)
        starts = [start for start, _ in samples]
        assert starts == [0, 400, 800]

    def test_empty_trace_yields_no_samples(self):
        assert entropy_timeline([], window=100) == []

    def test_single_event_trace_yields_no_samples(self):
        # One event has no successor pairs: no samples, not an error.
        assert entropy_timeline(["a"], window=100) == []


class TestPerFilePredictability:
    def test_contribution_ordering(self):
        sequence = ["a", "x", "a", "y", "a", "z", "a", "x"] * 10 + ["b", "c"] * 20
        profiles = per_file_predictability(sequence)
        assert profiles[0].file_id == "a"
        contributions = [p.contribution for p in profiles]
        assert contributions == sorted(contributions, reverse=True)

    def test_excludes_rare_files(self):
        sequence = ["a", "b"] * 10 + ["once"]
        profiles = per_file_predictability(sequence, minimum_accesses=2)
        assert all(p.file_id != "once" for p in profiles)

    def test_rejects_bad_minimum(self):
        with pytest.raises(AnalysisError):
            per_file_predictability(["a"], minimum_accesses=1)

    def test_fields_consistent(self):
        sequence = ["a", "b", "a", "c"] * 25
        for profile in per_file_predictability(sequence):
            assert profile.accesses >= 2
            assert 0 < profile.weight <= 1
            assert profile.entropy >= 0
            assert profile.contribution == pytest.approx(
                profile.weight * profile.entropy
            )


class TestHeatmap:
    def test_length_capped_at_width(self):
        samples = [(i, float(i % 7)) for i in range(200)]
        strip = predictability_heatmap(samples, width=50)
        assert len(strip) == 50

    def test_short_series_kept(self):
        samples = [(0, 1.0), (1, 2.0)]
        assert len(predictability_heatmap(samples, width=50)) == 2

    def test_ceiling_scales(self):
        samples = [(0, 1.0)]
        hot = predictability_heatmap(samples, ceiling=1.0)
        cool = predictability_heatmap(samples, ceiling=10.0)
        assert hot != cool

    def test_empty(self):
        assert predictability_heatmap([]) == ""

    def test_all_zero(self):
        strip = predictability_heatmap([(0, 0.0), (1, 0.0)])
        assert set(strip) == {" "}


class TestProfileSequence:
    def test_full_profile(self):
        sequence = ["a", "b", "c", "d"] * 300
        profile = profile_sequence(sequence, name="loop", window=400)
        assert profile.name == "loop"
        assert profile.events == 1200
        assert profile.overall_entropy == pytest.approx(0.0, abs=1e-9)
        assert profile.timeline
        rendering = profile.render()
        assert "loop" in rendering
        assert "bits" in rendering

    def test_empty_sequence(self):
        profile = profile_sequence([], name="empty")
        assert profile.events == 0
        assert profile.overall_entropy == 0.0
        assert "empty" in profile.render()

    def test_hotspot_count(self):
        sequence = [f"f{i % 12}" for i in range(600)]
        profile = profile_sequence(sequence, hotspot_count=3)
        assert len(profile.hotspots) <= 3
