"""Unit and equivalence tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.core.aggregating_cache import AggregatingClientCache
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
    collecting,
    dump_jsonl,
    load_jsonl,
    snapshot_records,
    write_jsonl,
)
from repro.obs import registry as obs_registry
from repro.sim.engine import DistributedFileSystem
from repro.workloads.synthetic import make_workload


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative_increment(self):
        with pytest.raises(ObservabilityError):
            Counter("c").inc(-1)

    def test_zero_increment_is_allowed(self):
        counter = Counter("c")
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_count_sum_min_max_mean(self):
        hist = Histogram("h")
        for value in (1, 5, 100):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 106
        assert hist.min == 1
        assert hist.max == 100
        assert hist.mean == pytest.approx(106 / 3)

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h").mean == 0.0

    def test_bucketing_and_overflow(self):
        hist = Histogram("h", bounds=(10, 100))
        hist.observe(3)
        hist.observe(10)  # boundary lands in its own bucket (value <= bound)
        hist.observe(50)
        hist.observe(5000)
        buckets = hist.as_dict()["buckets"]
        assert buckets["<=10"] == 2
        assert buckets["<=100"] == 1
        assert buckets[">100"] == 1

    def test_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", bounds=(5, 1))
        with pytest.raises(ObservabilityError):
            Histogram("h", bounds=())

    def test_time_context_manager_observes_nanoseconds(self):
        hist = Histogram("h")
        with hist.time():
            pass
        assert hist.count == 1
        assert hist.min >= 0


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ObservabilityError):
            registry.gauge("name")
        with pytest.raises(ObservabilityError):
            registry.histogram("name")

    def test_len_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3
        registry.reset()
        assert len(registry) == 0

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z").inc(2)
        registry.counter("a").inc(1)
        registry.histogram("h").observe(7)
        snap = registry.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["counters"]["z"] == 2
        assert snap["histograms"]["h"]["count"] == 1


class TestEnableDisable:
    def test_collecting_restores_flag_and_registry(self):
        assert not obs_registry.ENABLED
        default = obs_registry.get_registry()
        with collecting() as registry:
            assert obs_registry.ENABLED
            assert obs_registry.get_registry() is registry
        assert not obs_registry.ENABLED
        assert obs_registry.get_registry() is default

    def test_disabled_run_allocates_no_metrics(self):
        """With collection off, replays must not touch the registry."""
        registry = MetricsRegistry()
        previous = obs_registry.set_registry(registry)
        try:
            trace = make_workload("server", 2000, 7)
            DistributedFileSystem(
                client_capacity=100, server_capacity=150, group_size=4
            ).replay(trace)
            cache = AggregatingClientCache(capacity=100, group_size=4)
            cache.replay(trace.file_ids())
            assert len(registry) == 0
        finally:
            obs_registry.set_registry(previous)


def _strip_timers(snapshot):
    """Snapshot minus the path-specific entries: the wall-clock
    histograms (``*.ns`` — the fast path records one fused-loop timer,
    the generic path per-build latencies) and the
    ``engine.replay.path.*`` counters, whose entire purpose is to
    differ by which loop ran."""
    return {
        "counters": {
            name: value
            for name, value in snapshot["counters"].items()
            if not name.startswith("engine.replay.path.")
        },
        "gauges": snapshot["gauges"],
        "histograms": {
            name: summary
            for name, summary in snapshot["histograms"].items()
            if not name.endswith(".ns")
        },
    }


class TestReplayPathEquivalence:
    def test_engine_fast_and_generic_paths_record_identical_metrics(self):
        trace = make_workload("server", 4000, 11)
        snapshots = []
        for fast in (True, False):
            with collecting() as registry:
                system = DistributedFileSystem(
                    client_capacity=120, server_capacity=200, group_size=5
                )
                system.use_fast_replay = fast
                system.replay(trace)
            snapshots.append(_strip_timers(registry.snapshot()))
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]["counters"]["engine.client.hits"] > 0
        assert snapshots[0]["counters"]["successors.transitions"] == 3999

    def test_client_cache_fast_and_generic_paths_record_identical_metrics(self):
        sequence = make_workload("users", 3000, 3).file_ids()
        snapshots = []
        for fast in (True, False):
            with collecting() as registry:
                cache = AggregatingClientCache(capacity=150, group_size=5)
                cache.use_fast_replay = fast
                cache.replay(sequence)
            snapshots.append(_strip_timers(registry.snapshot()))
        assert snapshots[0] == snapshots[1]
        assert snapshots[0]["counters"]["client_cache.hits"] > 0
        assert snapshots[0]["histograms"]["client_cache.group_fetch.size"]["count"] > 0


class TestJsonlExport:
    def test_round_trip_preserves_every_metric(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("hits").inc(7)
        registry.gauge("clients").set(3)
        registry.histogram("sizes").observe(4)
        path = tmp_path / "snap.jsonl"
        lines = write_jsonl(registry, path, meta={"run": "test"})
        assert lines == 4  # meta + three metrics
        loaded = load_jsonl(path)
        assert loaded["meta"] == {"run": "test"}
        assert loaded["counters"] == {"hits": 7}
        assert loaded["gauges"] == {"clients": 3}
        assert loaded["histograms"]["sizes"]["count"] == 1
        assert loaded["histograms"]["sizes"]["sum"] == 4

    def test_meta_line_comes_first_with_schema(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        records = snapshot_records(registry)
        assert records[0]["kind"] == "meta"
        assert records[0]["schema"] == "repro.obs/1"

    def test_dump_jsonl_emits_one_json_object_per_line(self, tmp_path):
        import io

        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        buffer = io.StringIO()
        count = dump_jsonl(registry, buffer)
        lines = [line for line in buffer.getvalue().splitlines() if line]
        assert len(lines) == count == 2
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta", "schema": "other/9"}\n')
        with pytest.raises(ObservabilityError):
            load_jsonl(path)

    def test_load_rejects_missing_meta_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "counter", "name": "c", "value": 1}\n')
        with pytest.raises(ObservabilityError):
            load_jsonl(path)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ObservabilityError):
            load_jsonl(path)


class TestMetricsCli:
    def test_metrics_subcommand_writes_loadable_snapshot(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "metrics.jsonl"
        code = main(
            [
                "metrics",
                "--workload",
                "server",
                "--events",
                "2000",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        loaded = load_jsonl(out)
        assert loaded["counters"]["engine.client.hits"] > 0
        assert loaded["counters"]["engine.client.misses"] > 0
        assert loaded["histograms"]["engine.group_fetch.size"]["count"] > 0
        assert "engine.client.hits" in capsys.readouterr().out
        # the CLI run must not leak collection into later code
        assert not obs_registry.ENABLED
