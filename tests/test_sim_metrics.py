"""Unit tests for interval metric recording."""

import pytest

from repro.caching.lru import LRUCache
from repro.errors import SimulationError
from repro.sim.metrics import (
    IntervalRecorder,
    IntervalSample,
    steady_state_hit_rate,
    warmup_split,
)


class TestIntervalRecorder:
    def test_samples_cover_all_events(self):
        recorder = IntervalRecorder(LRUCache(2), interval=3)
        samples = recorder.replay(["a", "b", "a", "b", "a", "b", "c"])
        assert samples[-1].end_event == 7
        assert sum(s.accesses for s in samples) == 7

    def test_interval_boundaries(self):
        recorder = IntervalRecorder(LRUCache(2), interval=2)
        samples = recorder.replay(["a", "a", "a", "a"])
        assert len(samples) == 2
        assert samples[0].hits == 1  # miss then hit
        assert samples[1].hits == 2

    def test_partial_tail_flushed(self):
        recorder = IntervalRecorder(LRUCache(2), interval=4)
        samples = recorder.replay(["a", "a", "a"])
        assert len(samples) == 1
        assert samples[0].accesses == 3

    def test_hit_rate_series(self):
        recorder = IntervalRecorder(LRUCache(1), interval=2)
        recorder.replay(["a", "a", "b", "b"])
        series = recorder.hit_rate_series()
        assert series == [pytest.approx(0.5), pytest.approx(0.5)]

    def test_rejects_bad_interval(self):
        with pytest.raises(SimulationError):
            IntervalRecorder(LRUCache(2), interval=0)

    def test_rejects_statless_target(self):
        class Weird:
            def access(self, key):
                return True

        with pytest.raises(SimulationError):
            IntervalRecorder(Weird(), interval=2)

    def test_access_passthrough(self):
        recorder = IntervalRecorder(LRUCache(2), interval=10)
        assert recorder.access("a") is False
        assert recorder.access("a") is True


class TestWarmupSplit:
    def _samples(self):
        return [
            IntervalSample(0, 100, hits=10, misses=90),
            IntervalSample(100, 200, hits=50, misses=50),
            IntervalSample(200, 300, hits=80, misses=20),
        ]

    def test_split(self):
        warm, steady = warmup_split(self._samples(), warmup_fraction=0.4)
        assert len(warm) == 1
        assert len(steady) == 2

    def test_zero_warmup(self):
        warm, steady = warmup_split(self._samples(), warmup_fraction=0.0)
        assert warm == []
        assert len(steady) == 3

    def test_rejects_bad_fraction(self):
        with pytest.raises(SimulationError):
            warmup_split(self._samples(), warmup_fraction=1.0)

    def test_empty(self):
        assert warmup_split([], 0.1) == ([], [])

    def test_steady_state_hit_rate(self):
        rate = steady_state_hit_rate(self._samples(), warmup_fraction=0.4)
        assert rate == pytest.approx(130 / 200)

    def test_steady_state_empty(self):
        assert steady_state_hit_rate([], 0.1) == 0.0
