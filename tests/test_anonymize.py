"""Unit tests for trace anonymization."""

import pytest

from repro.core.entropy import successor_entropy
from repro.traces.anonymize import (
    anonymize_trace,
    enumerate_trace,
    verify_structure_preserved,
)
from repro.traces.events import EventKind, Trace, TraceEvent


@pytest.fixture
def sensitive_trace():
    trace = Trace(name="payroll")
    trace.append(TraceEvent("/home/alice/salaries.xlsx", client_id="alice-laptop"))
    trace.append(TraceEvent("/home/alice/bonus.doc", EventKind.WRITE, client_id="alice-laptop"))
    trace.append(TraceEvent("/home/alice/salaries.xlsx", client_id="alice-laptop"))
    trace.append(TraceEvent("/home/bob/resume.pdf", client_id="bob-laptop", user_id="bob"))
    return trace


class TestAnonymizeTrace:
    def test_identifiers_replaced(self, sensitive_trace):
        anonymized = anonymize_trace(sensitive_trace, key="secret")
        for event in anonymized:
            assert "alice" not in event.file_id
            assert "alice" not in event.client_id
            assert "bob" not in event.user_id

    def test_deterministic_for_key(self, sensitive_trace):
        a = anonymize_trace(sensitive_trace, key="k1").file_ids()
        b = anonymize_trace(sensitive_trace, key="k1").file_ids()
        assert a == b

    def test_different_keys_differ(self, sensitive_trace):
        a = anonymize_trace(sensitive_trace, key="k1").file_ids()
        b = anonymize_trace(sensitive_trace, key="k2").file_ids()
        assert a != b

    def test_identity_structure_preserved(self, sensitive_trace):
        anonymized = anonymize_trace(sensitive_trace, key="secret")
        assert verify_structure_preserved(sensitive_trace, anonymized)
        # Same file -> same token.
        ids = anonymized.file_ids()
        assert ids[0] == ids[2]
        assert ids[0] != ids[1]

    def test_kinds_preserved(self, sensitive_trace):
        anonymized = anonymize_trace(sensitive_trace, key="secret")
        assert anonymized[1].kind is EventKind.WRITE

    def test_empty_attribution_stays_empty(self, sensitive_trace):
        anonymized = anonymize_trace(sensitive_trace, key="secret")
        assert anonymized[0].user_id == ""

    def test_namespaces_separated(self):
        # The same raw string as a file and as a client must map to
        # different tokens (no cross-namespace linkage).
        trace = Trace()
        trace.append(TraceEvent("shared-name", client_id="shared-name"))
        anonymized = anonymize_trace(trace, key="k")
        assert anonymized[0].file_id != anonymized[0].client_id

    def test_token_length(self, sensitive_trace):
        anonymized = anonymize_trace(sensitive_trace, key="k", token_length=8)
        assert all(len(event.file_id) == 8 for event in anonymized)


class TestEnumerateTrace:
    def test_appearance_order(self, sensitive_trace):
        renamed = enumerate_trace(sensitive_trace)
        assert renamed.file_ids() == ["f000000", "f000001", "f000000", "f000002"]

    def test_clients_enumerated(self, sensitive_trace):
        renamed = enumerate_trace(sensitive_trace)
        assert renamed[0].client_id == "c00"
        assert renamed[3].client_id == "c01"

    def test_user_process_dropped(self, sensitive_trace):
        renamed = enumerate_trace(sensitive_trace)
        assert all(e.user_id == "" and e.process_id == "" for e in renamed)

    def test_structure_preserved(self, sensitive_trace):
        renamed = enumerate_trace(sensitive_trace)
        assert verify_structure_preserved(sensitive_trace, renamed)


class TestAnalysisInvariance:
    def test_entropy_invariant_under_anonymization(self):
        from repro.workloads import make_workstation

        trace = make_workstation(4000)
        original = successor_entropy(trace.file_ids())
        hashed = successor_entropy(anonymize_trace(trace, key="k").file_ids())
        enumerated = successor_entropy(enumerate_trace(trace).file_ids())
        assert hashed == pytest.approx(original)
        assert enumerated == pytest.approx(original)

    def test_cache_behaviour_invariant(self):
        from repro.caching.lru import LRUCache
        from repro.workloads import make_server

        trace = make_server(4000)
        def misses(sequence):
            cache = LRUCache(100)
            for key in sequence:
                cache.access(key)
            return cache.stats.misses

        assert misses(trace.file_ids()) == misses(
            enumerate_trace(trace).file_ids()
        )


class TestVerifyStructure:
    def test_detects_length_mismatch(self, sensitive_trace):
        shorter = sensitive_trace.slice(0, 2)
        assert not verify_structure_preserved(sensitive_trace, shorter)

    def test_detects_identity_merge(self):
        original = Trace.from_file_ids(["a", "b", "a"])
        merged = Trace.from_file_ids(["x", "x", "x"])
        assert not verify_structure_preserved(original, merged)

    def test_detects_kind_change(self):
        original = Trace.from_file_ids(["a"])
        changed = Trace.from_file_ids(["a"], kind=EventKind.WRITE)
        assert not verify_structure_preserved(original, changed)
