"""Unit tests for the hoarding subsystem."""

import pytest

from repro.errors import SimulationError
from repro.hoarding.hoard import (
    HOARD_POLICIES,
    FrequencyHoard,
    GroupClosureHoard,
    RecencyHoard,
    compare_hoards,
    simulate_disconnection,
)


class TestRecencyHoard:
    def test_most_recent_first(self):
        hoard = RecencyHoard().select(["a", "b", "c", "a"], budget=2)
        assert hoard == ["a", "c"]

    def test_budget_respected(self):
        hoard = RecencyHoard().select([f"f{i}" for i in range(100)], budget=10)
        assert len(hoard) == 10

    def test_deduplicates(self):
        hoard = RecencyHoard().select(["a", "a", "a"], budget=5)
        assert hoard == ["a"]


class TestFrequencyHoard:
    def test_most_frequent_first(self):
        hoard = FrequencyHoard().select(["a", "b", "b", "c", "b"], budget=2)
        assert hoard[0] == "b"
        assert len(hoard) == 2

    def test_ties_deterministic(self):
        first = FrequencyHoard().select(["x", "y", "z"], budget=2)
        second = FrequencyHoard().select(["x", "y", "z"], budget=2)
        assert first == second


class TestGroupClosureHoard:
    def test_completes_working_sets(self):
        # History ends mid-chain: closure should pull in the not-
        # recently-touched tail of the chain.
        chain = [f"c{i}" for i in range(10)]
        history = chain * 5 + chain[:3]  # disconnect mid-pass
        hoard = GroupClosureHoard(group_size=10).select(history, budget=10)
        assert set(hoard) == set(chain)

    def test_budget_respected(self):
        history = [f"f{i % 30}" for i in range(300)]
        hoard = GroupClosureHoard(group_size=10).select(history, budget=7)
        assert len(hoard) <= 7

    def test_rejects_bad_group_size(self):
        with pytest.raises(SimulationError):
            GroupClosureHoard(group_size=0)

    def test_registry(self):
        for name, factory in HOARD_POLICIES.items():
            policy = factory()
            assert policy.name == name
            assert policy.select(["a", "b", "a", "b"], budget=2)


class TestSimulateDisconnection:
    def test_perfect_hoard_no_misses(self):
        sequence = ["a", "b"] * 20
        report = simulate_disconnection(sequence, 20, budget=2, policy=RecencyHoard())
        assert report.misses == 0
        assert report.hit_rate == 1.0

    def test_miss_accounting(self):
        history = ["a"] * 10
        offline = ["a", "b", "a", "b"]  # b appears in history? no
        sequence = history + ["b"] + offline  # b seen once pre-disconnect
        report = simulate_disconnection(
            sequence, len(history) + 1, budget=1, policy=RecencyHoard()
        )
        # Hoard = {b} (most recent); offline accesses to a miss.
        assert report.offline_accesses == 4
        assert report.misses == 2

    def test_offline_creations_not_counted(self):
        sequence = ["a"] * 10 + ["new1", "new1", "a"]
        report = simulate_disconnection(sequence, 10, budget=1, policy=RecencyHoard())
        # new1 was created offline: its accesses are local, not misses.
        assert report.offline_accesses == 1
        assert report.misses == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(SimulationError):
            simulate_disconnection(["a"], 0, 1, RecencyHoard())
        with pytest.raises(SimulationError):
            simulate_disconnection(["a", "b"], 5, 1, RecencyHoard())
        with pytest.raises(SimulationError):
            simulate_disconnection(["a", "b"], 1, 0, RecencyHoard())

    def test_policy_budget_violation_detected(self):
        class Greedy(RecencyHoard):
            def select(self, history, budget):
                return list(dict.fromkeys(history))  # ignores budget

        sequence = [f"f{i}" for i in range(10)] + ["f0"]
        with pytest.raises(SimulationError, match="exceeded"):
            simulate_disconnection(sequence, 10, budget=2, policy=Greedy())

    def test_empty_offline_window(self):
        report = simulate_disconnection(["a", "b"], 2, budget=1, policy=RecencyHoard())
        assert report.offline_accesses == 0
        assert report.miss_rate == 0.0


class TestCompareHoards:
    def test_all_policies_reported(self):
        sequence = [f"f{i % 15}" for i in range(400)]
        reports = compare_hoards(sequence, 300, budget=10)
        assert {report.policy for report in reports} == {
            "recency",
            "frequency",
            "group-closure",
        }

    def test_closure_wins_task_continuation_under_tight_budget(self):
        # Application-style chains; disconnect mid-task with a budget
        # smaller than the working set of recent *files* but large
        # enough for one whole chain.
        chain_a = [f"a{i}" for i in range(30)]
        chain_b = [f"b{i}" for i in range(30)]
        history = (chain_a + chain_b) * 5 + chain_a[:10]
        offline = chain_a[10:] + chain_a  # the task continues
        sequence = history + offline
        reports = {
            report.policy: report
            for report in compare_hoards(
                sequence, len(history), budget=30, group_size=30
            )
        }
        # The closure hoards the continuing task's whole chain (following
        # the a9 -> a10 -> ... transitive successors); recency can only
        # keep the files touched most recently, half of which belong to
        # the *other* chain.
        assert reports["group-closure"].misses < reports["recency"].misses
        assert reports["group-closure"].miss_rate < 0.25
