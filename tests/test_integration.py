"""Integration tests: cross-module flows exercised end to end."""


import pytest

from repro import (
    AggregatingClientCache,
    AggregatingServerCache,
    DistributedFileSystem,
    LRUCache,
    RelationshipGraph,
    SuccessorTracker,
    TwoLevelHierarchy,
    cache_filtered,
    make_workload,
    read_trace,
    successor_entropy,
    summarize,
    write_trace,
)
from repro.core.grouping import GroupBuilder
from repro.traces.filters import opens_only


class TestTraceLifecycle:
    def test_generate_persist_reload_analyze(self, tmp_path):
        trace = make_workload("workstation", 5000)
        path = tmp_path / "ws.trace"
        write_trace(trace, path)
        reloaded = read_trace(path)
        assert reloaded.file_ids() == trace.file_ids()
        original = summarize(trace)
        recovered = summarize(reloaded)
        assert recovered.unique_files == original.unique_files
        assert recovered.write_fraction == pytest.approx(original.write_fraction)

    def test_filter_chain_composition(self):
        trace = make_workload("users", 5000)
        opens = opens_only(trace)
        filtered = cache_filtered(opens, LRUCache(50))
        assert len(filtered) < len(opens) < len(trace) + 1
        # Entropy of the filtered stream is still computable.
        assert successor_entropy(filtered.file_ids()) >= 0.0


class TestClientServerStack:
    def test_full_system_against_manual_composition(self):
        """DistributedFileSystem must agree with a hand-built client stack."""
        trace = make_workload("server", 6000)
        sequence = trace.file_ids()

        system = DistributedFileSystem(
            client_capacity=200, group_size=5, cooperative=True
        )
        for key in sequence:
            system.access("c", key)
        manual = AggregatingClientCache(capacity=200, group_size=5)
        manual.replay(sequence)

        system_stats = system.metrics().client_stats["c"]
        assert system_stats.misses == manual.stats.misses
        assert system_stats.hits == manual.stats.hits
        assert system.remote_requests == manual.demand_fetches

    def test_server_cache_reduces_store_load(self):
        trace = make_workload("workstation", 6000)
        without = DistributedFileSystem(client_capacity=50, group_size=5)
        with_server = DistributedFileSystem(
            client_capacity=50, server_capacity=400, group_size=5
        )
        for event in trace:
            without.access("c", event.file_id)
            with_server.access("c", event.file_id)
        assert (
            with_server.metrics().store_fetches < without.metrics().store_fetches
        )

    def test_aggregating_server_in_hierarchy_beats_lru_server(self):
        sequence = make_workload("server", 10_000).file_ids()
        lru_stack = TwoLevelHierarchy(LRUCache(150), LRUCache(300))
        lru_result = lru_stack.replay(sequence)
        agg_stack = TwoLevelHierarchy(
            LRUCache(150), AggregatingServerCache(capacity=300, group_size=5)
        )
        agg_result = agg_stack.replay(sequence)
        assert agg_result.server_hit_rate > lru_result.server_hit_rate


class TestMetadataConsistency:
    def test_tracker_and_graph_agree_on_top_successor(self):
        sequence = make_workload("server", 4000).file_ids()
        tracker = SuccessorTracker(policy="lru", capacity=8)
        tracker.observe_sequence(sequence)
        graph = RelationshipGraph.from_sequence(sequence)
        # For files with a single dominant successor the recency pick
        # and the frequency pick coincide; check a sample.
        agreements = 0
        checked = 0
        for file_id in list(tracker.tracked_files())[:200]:
            ranked = graph.successors_of(file_id, k=2)
            if len(ranked) == 1 or (
                len(ranked) >= 2 and ranked[0][1] >= 3 * max(ranked[1][1], 1)
            ):
                checked += 1
                if tracker.most_likely(file_id) == ranked[0][0]:
                    agreements += 1
        assert checked > 10
        assert agreements / checked > 0.8

    def test_group_builder_consistent_with_graph_groups(self):
        sequence = ["a", "b", "c", "d"] * 25
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(sequence)
        builder = GroupBuilder(tracker, 3)
        graph = RelationshipGraph.from_sequence(sequence)
        assert list(builder.build("a").members) == graph.group_for("a", 3)


class TestFailureAndChurnScenarios:
    def test_invalidation_mid_stream(self):
        """Deleted files can be invalidated without corrupting the cache."""
        server = AggregatingServerCache(capacity=50, group_size=3)
        sequence = [f"f{i % 20}" for i in range(200)]
        for index, key in enumerate(sequence):
            server.access(key)
            if index % 37 == 0:
                server.invalidate(f"f{index % 20}")
        assert len(server) <= 50
        assert server.stats.accesses == 200

    def test_cold_restart_of_server_metadata(self):
        """A server losing its metadata recovers: hit rate climbs again."""
        sequence = make_workload("server", 4000).file_ids()
        cache = AggregatingClientCache(capacity=200, group_size=5)
        cache.replay(sequence)
        warm_hit_rate = cache.stats.hit_rate

        restarted = AggregatingClientCache(capacity=200, group_size=5)
        # Replay the same trace twice: second pass represents post-
        # restart behaviour with re-learned metadata.
        restarted.replay(sequence)
        first_pass = restarted.stats.snapshot()
        restarted.replay(sequence)
        second_pass_hits = restarted.stats.hits - first_pass.hits
        second_pass_rate = second_pass_hits / len(sequence)
        assert second_pass_rate >= warm_hit_rate * 0.9

    def test_workload_shift_adapts(self):
        """Grouping keeps helping after an abrupt working-set change."""
        phase1 = [f"p1/f{i % 40}" for i in range(3000)]
        phase2 = [f"p2/f{i % 40}" for i in range(3000)]
        cache = AggregatingClientCache(capacity=20, group_size=5)
        cache.replay(phase1)
        fetches_phase1 = cache.demand_fetches
        cache.replay(phase2)
        fetches_phase2 = cache.demand_fetches - fetches_phase1

        lru = AggregatingClientCache(capacity=20, group_size=1)
        lru.replay(phase1)
        lru_phase1 = lru.demand_fetches
        lru.replay(phase2)
        lru_phase2 = lru.demand_fetches - lru_phase1
        assert fetches_phase2 < lru_phase2 * 0.6


class TestPublicAPISurface:
    def test_package_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestReportEndToEnd:
    def test_small_scale_report_generates(self, tmp_path):
        """The full default report pipeline runs end to end (tiny scale)."""
        from repro.analysis.report import write_report

        path = write_report(tmp_path / "report.md", events=1500)
        text = path.read_text()
        assert "# Full evaluation report" in text
        assert "## Headline claims" in text
        # Every default section rendered.
        for marker in ("Figure 3 (server)", "Figure 4 (users)",
                       "Figure 5 (workstation)", "Figure 7",
                       "Figure 8 (write)", "Placement",
                       "Hoarding", "Cooperation", "Attribution",
                       "Adaptation", "Server capacity sweep",
                       "Peer caching"):
            assert marker in text, marker
