"""Tests for the CI time-series smoke gate (scripts/check_timeseries.py)."""

import importlib.util
import json
from pathlib import Path

from repro.obs import (
    TS_SCHEMA,
    WindowSample,
    WindowedCollector,
    prometheus_text,
    windowing,
    write_ts_jsonl,
)
from repro.sim.engine import DistributedFileSystem
from repro.workloads.synthetic import make_workload

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_timeseries.py"
_spec = importlib.util.spec_from_file_location("check_timeseries", _SCRIPT)
check_timeseries = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_timeseries)


def _real_series(tmp_path):
    with windowing(window=500) as collector:
        DistributedFileSystem(client_capacity=150, group_size=4).replay(
            make_workload("server", 1500, seed=7)
        )
    path = tmp_path / "series.jsonl"
    write_ts_jsonl(collector, path)
    return path


class TestCheckTimeseries:
    def test_real_export_is_clean(self, tmp_path):
        path = _real_series(tmp_path)
        assert check_timeseries.check_timeseries(path) == []
        assert check_timeseries.main([str(path)]) == 0

    def test_unreadable_file_is_one_problem(self, tmp_path):
        problems = check_timeseries.check_timeseries(tmp_path / "missing.jsonl")
        assert len(problems) == 1

    def test_flags_sample_count_mismatch(self, tmp_path):
        path = _real_series(tmp_path)
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["samples"] = 99
        path.write_text("\n".join([json.dumps(meta)] + lines[1:]) + "\n")
        problems = check_timeseries.check_timeseries(path)
        assert any("meta claims 99" in problem for problem in problems)

    def test_flags_non_monotone_window_starts(self, tmp_path):
        collector = WindowedCollector(window=100)
        collector.append(
            WindowSample(index=0, start=100, events=100, hits=50, misses=50)
        )
        collector.append(
            WindowSample(index=1, start=0, events=100, hits=50, misses=50)
        )
        path = tmp_path / "bad.jsonl"
        write_ts_jsonl(collector, path)
        problems = check_timeseries.check_timeseries(path)
        assert any("not strictly increasing" in problem for problem in problems)

    def test_flags_empty_replay_series_unless_allowed(self, tmp_path):
        collector = WindowedCollector(window=100)
        collector.record_point(0, {"g": 4}, {}, 0.1)
        path = tmp_path / "sweep-only.jsonl"
        write_ts_jsonl(collector, path)
        problems = check_timeseries.check_timeseries(path)
        assert any("no replay samples" in problem for problem in problems)
        assert check_timeseries.main([str(path), "--allow-empty-replay"]) == 0

    def test_flags_oversized_window(self, tmp_path):
        collector = WindowedCollector(window=100)
        collector.append(
            WindowSample(index=0, start=0, events=500, hits=250, misses=250)
        )
        path = tmp_path / "bad.jsonl"
        write_ts_jsonl(collector, path)
        problems = check_timeseries.check_timeseries(path)
        assert any("exceed window" in problem for problem in problems)


class TestPrometheusChecker:
    def test_real_rendering_is_clean(self):
        samples = [WindowSample(index=0, events=10, hits=8, misses=2)]
        assert check_timeseries._check_prometheus(prometheus_text(samples)) == []

    def test_missing_eof_flagged(self):
        assert any(
            "EOF" in problem
            for problem in check_timeseries._check_prometheus("x_total 1")
        )

    def test_undeclared_metric_flagged(self):
        text = "undeclared_metric 5\n# EOF"
        problems = check_timeseries._check_prometheus(text)
        assert any("no # TYPE" in problem for problem in problems)

    def test_non_numeric_value_flagged(self):
        text = "# TYPE m counter\nm banana\n# EOF"
        problems = check_timeseries._check_prometheus(text)
        assert any("non-numeric" in problem for problem in problems)

    def test_schema_tag_exported(self):
        assert check_timeseries.TS_SCHEMA == TS_SCHEMA
