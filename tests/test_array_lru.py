"""Differential tests for the array-backed eviction core.

The batch replay kernel's correctness rests on two flat-array state
machines being *count-identical* to their dict-based references:
:class:`repro.caching.array_lru.ArrayLRU` vs
:class:`repro.caching.lru.LRUCache`, and
:class:`repro.core.successors.ArraySuccessorTracker` vs
:class:`repro.core.successors.SuccessorTracker`.  Hypothesis drives
both sides of each pair with identical operation streams and asserts
identical hit/miss/eviction streams and identical final contents —
with and without numpy, since the array cache's queue refill and
export scans have separate numpy and pure-python implementations.
"""

import contextlib
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.caching.array_lru as array_lru
from repro.caching.array_lru import ArrayLRU, refill_queue
from repro.caching.lru import LRUCache
from repro.core.successors import ArraySuccessorTracker, SuccessorTracker
from repro.errors import CacheConfigurationError

NUMPY_MODES = (True, False) if array_lru.HAVE_NUMPY else (False,)
MODE_IDS = ["numpy" if mode else "pure" for mode in NUMPY_MODES]

#: Small key space so hypothesis streams collide constantly — hits,
#: repeat installs, and full-capacity evictions all get exercised.
UNIVERSE = 16


@contextlib.contextmanager
def numpy_mode(enabled):
    """Force ``array_lru.HAVE_NUMPY`` for the duration of a test body.

    A plain context manager rather than a monkeypatch fixture so that
    hypothesis can re-run the test body many times without tripping the
    function-scoped-fixture health check.
    """
    saved = array_lru.HAVE_NUMPY
    array_lru.HAVE_NUMPY = enabled
    try:
        yield
    finally:
        array_lru.HAVE_NUMPY = saved


def _operations():
    """Streams of demand accesses and batch tail installs."""
    key = st.integers(min_value=0, max_value=UNIVERSE - 1)
    return st.lists(
        st.one_of(
            st.tuples(st.just("access"), key),
            st.tuples(st.just("install"), st.lists(key, max_size=6)),
        ),
        max_size=80,
    )


def run_differential(capacity, operations):
    """Drive both caches with one stream; assert identical behaviour."""
    dict_cache = LRUCache(capacity)
    array_cache = ArrayLRU(capacity, UNIVERSE)
    dict_victims, array_victims = [], []
    dict_cache.evict_listener = dict_victims.append
    array_cache.evict_listener = array_victims.append
    dict_stream, array_stream = [], []
    for op, payload in operations:
        if op == "access":
            dict_stream.append(dict_cache.access(payload))
            array_stream.append(array_cache.access(payload))
        else:
            dict_stream.append(dict_cache.install_group_at_tail(list(payload)))
            array_stream.append(array_cache.install_tail(list(payload)))
    # Identical hit/miss results and install counts, event for event.
    assert array_stream == dict_stream
    # Identical eviction streams: same victims in the same order.
    assert array_victims == dict_victims
    # Identical final contents in identical LRU-to-MRU order.
    assert array_cache.export() == list(dict_cache._order)
    assert len(array_cache) == len(dict_cache)


class TestArrayLRUDifferential:
    @pytest.mark.parametrize("use_numpy", NUMPY_MODES, ids=MODE_IDS)
    @given(capacity=st.integers(min_value=1, max_value=8), ops=_operations())
    @settings(max_examples=120, deadline=None)
    def test_matches_dict_lru(self, use_numpy, capacity, ops):
        with numpy_mode(use_numpy):
            run_differential(capacity, ops)

    @pytest.mark.parametrize("use_numpy", NUMPY_MODES, ids=MODE_IDS)
    def test_long_adversarial_stream(self, use_numpy):
        """A long seeded stream at tiny capacity: the queue drains and
        refills many times, cold-stack entries go stale, and the two
        caches must still agree on every single event."""
        rng = random.Random(0xA11)
        operations = []
        for _ in range(4000):
            if rng.random() < 0.75:
                operations.append(("access", rng.randrange(UNIVERSE)))
            else:
                group = [rng.randrange(UNIVERSE) for _ in range(rng.randrange(6))]
                operations.append(("install", group))
        with numpy_mode(use_numpy):
            run_differential(capacity=5, operations=operations)

    @pytest.mark.parametrize("use_numpy", NUMPY_MODES, ids=MODE_IDS)
    def test_warm_import_matches_dict_lru(self, use_numpy):
        """`from_keys` seeds the same state as a warmed dict cache."""
        warm = [7, 2, 9, 4]
        dict_cache = LRUCache(5)
        for key in warm:
            dict_cache.access(key)
        with numpy_mode(use_numpy):
            array_cache = ArrayLRU.from_keys(warm, capacity=5, universe=UNIVERSE)
            assert array_cache.export() == warm
            # The imported LRU entry is the first demand-miss victim.
            dict_cache.access(11)
            dict_cache.access(12)
            array_cache.access(11)
            array_cache.access(12)
            assert array_cache.export() == list(dict_cache._order)


class TestArrayLRUUnit:
    def test_rejects_bad_configuration(self):
        with pytest.raises(CacheConfigurationError):
            ArrayLRU(0, UNIVERSE)
        with pytest.raises(CacheConfigurationError):
            ArrayLRU(4, -1)

    def test_evict_from_empty_raises(self):
        with pytest.raises(KeyError):
            ArrayLRU(4, UNIVERSE).evict()

    def test_touch_promotes_only_residents(self):
        cache = ArrayLRU(3, UNIVERSE)
        assert not cache.touch(5)
        for key in (1, 2, 3):
            cache.access(key)
        assert cache.touch(1)
        assert cache.export() == [2, 3, 1]
        cache.access(4)  # evicts 2, the exact LRU after the promotion
        assert cache.export() == [3, 1, 4]

    def test_install_tail_trims_and_orders_victims(self):
        cache = ArrayLRU(4, UNIVERSE)
        cache.access(1)
        installed = cache.install_tail([2, 3, 2, 4, 5])
        # Deduped to [2, 3, 4, 5], trimmed to capacity - 1 = 3.
        assert installed == 3
        assert cache.export() == [4, 3, 2, 1]
        victims = []
        cache.evict_listener = victims.append
        for key in (6, 7, 8):
            cache.access(key)
        # Last companion placed is the first victim, then the others.
        assert victims == [4, 3, 2]

    def test_install_tail_is_noop_at_capacity_one(self):
        cache = ArrayLRU(1, UNIVERSE)
        cache.access(3)
        assert cache.install_tail([4, 5]) == 0
        assert cache.export() == [3]

    def test_clear_resets_everything(self):
        cache = ArrayLRU(3, UNIVERSE)
        for key in (1, 2, 3, 4):
            cache.access(key)
        cache.install_tail([5])
        cache.clear()
        assert len(cache) == 0
        assert cache.export() == []
        assert 2 not in cache
        cache.access(6)
        assert cache.export() == [6]

    @pytest.mark.skipif(not array_lru.HAVE_NUMPY, reason="numpy not available")
    def test_refill_and_export_paths_agree(self):
        """The numpy and pure scans over one state yield identical
        queues and identical export orders."""
        cache = ArrayLRU(6, UNIVERSE)
        for key in (3, 1, 4, 1, 5, 9, 2, 6):
            cache.access(key)
        cache.install_tail([7, 8])
        queues = {}
        exports = {}
        for mode in (True, False):
            with numpy_mode(mode):
                queue = []
                refill_queue(queue, cache.in_cache, cache.stamp)
                queues[mode] = queue
                exports[mode] = cache.export()
        assert queues[True] == queues[False]
        assert exports[True] == exports[False]


class TestArraySuccessorTrackerDifferential:
    @given(
        capacity=st.integers(min_value=1, max_value=5),
        warm=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30
        ),
        batch=st.lists(
            st.tuples(st.integers(0, 9), st.integers(0, 9)), max_size=30
        ),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_dict_tracker(self, capacity, warm, batch):
        """warm transitions via the dict tracker, then a batch via the
        array form folded back, equals one tracker fed everything."""
        reference = SuccessorTracker(policy="lru", capacity=capacity)
        target = SuccessorTracker(policy="lru", capacity=capacity)
        for predecessor, successor in warm:
            reference.observe_transition(predecessor, successor)
            target.observe_transition(predecessor, successor)
        array_tracker = ArraySuccessorTracker.from_tracker(target, universe=10)
        assert array_tracker is not None
        array_tracker.observe_batch(
            [pair[0] for pair in batch], [pair[1] for pair in batch]
        )
        array_tracker.fold_into(target)
        for predecessor, successor in batch:
            reference.observe_transition(predecessor, successor)
        for code in range(10):
            assert target.successors(code) == reference.successors(code)
            assert array_tracker.predict(code) == reference.successors(code)

    def test_shared_slots_mutate_tracker_in_place(self):
        tracker = SuccessorTracker(policy="lru", capacity=4)
        tracker.observe_transition(1, 2)
        array_tracker = ArraySuccessorTracker.from_tracker(tracker, universe=10)
        array_tracker.observe_batch([1], [3])
        # No fold needed for a known predecessor: the list is shared.
        assert tracker.successors(1) == [3, 2]

    def test_dummy_slot_absorbs_unknown_previous(self):
        array_tracker = ArraySuccessorTracker(capacity=4, universe=10)
        array_tracker.observe_batch([array_tracker.dummy], [5])
        tracker = SuccessorTracker(policy="lru", capacity=4)
        assert array_tracker.fold_into(tracker) == 0
        assert tracker.successors(5) == []

    def test_string_keyed_tracker_is_not_importable(self):
        tracker = SuccessorTracker(policy="lru", capacity=4)
        tracker.observe_transition("a", "b")
        assert ArraySuccessorTracker.from_tracker(tracker, universe=10) is None

    def test_out_of_range_entries_are_not_importable(self):
        tracker = SuccessorTracker(policy="lru", capacity=4)
        tracker.observe_transition(1, 99)
        assert ArraySuccessorTracker.from_tracker(tracker, universe=10) is None
