"""Unit tests for multi-timescale validation."""

import pytest

from repro.analysis.timescale import (
    entropy_at_timescales,
    evaluate_at_timescales,
    policy_ordering_holds,
    split_into_rounds,
)
from repro.errors import AnalysisError


class TestSplitIntoRounds:
    def test_covers_everything(self):
        sequence = list(range(10))
        pieces = split_into_rounds(sequence, 3)
        assert [x for piece in pieces for x in piece] == sequence

    def test_round_count(self):
        assert len(split_into_rounds(list(range(7)), 4)) == 4

    def test_rejects_bad_rounds(self):
        with pytest.raises(AnalysisError):
            split_into_rounds([1], 0)


class TestEvaluateAtTimescales:
    def test_report_fields(self):
        sequence = ["a", "b"] * 100
        report = evaluate_at_timescales(
            sequence, lambda piece: float(len(piece)), rounds=4, metric_name="len"
        )
        assert report.metric_name == "len"
        assert report.whole_trace == 200.0
        assert report.rounds == 4
        assert report.mean == pytest.approx(50.0)
        assert report.spread == 0.0

    def test_empty_rounds_skipped(self):
        report = evaluate_at_timescales(["a"], lambda piece: 1.0, rounds=4)
        assert report.rounds <= 4

    def test_spread_of_varying_metric(self):
        sequence = ["a"] * 50 + ["b"] * 150
        report = evaluate_at_timescales(
            sequence,
            lambda piece: piece.count("a") / max(len(piece), 1),
            rounds=4,
            metric_name="a-share",
        )
        assert report.spread > 0.5

    def test_empty_report_defaults(self):
        report = evaluate_at_timescales([], lambda piece: 1.0, rounds=1)
        assert report.mean == 1.0 or report.mean == 0.0  # [] round skipped


class TestEntropyAtTimescales:
    def test_stationary_source_is_stable(self):
        sequence = ["a", "b", "c"] * 400
        report = entropy_at_timescales(sequence, rounds=4)
        assert report.whole_trace == pytest.approx(0.0, abs=1e-9)
        assert report.spread == pytest.approx(0.0, abs=1e-9)

    def test_phase_change_shows_spread(self):
        import random

        rng = random.Random(1)
        calm = ["a", "b", "c", "d"] * 200
        wild_alphabet = [f"w{i}" for i in range(30)]
        wild = [wild_alphabet[rng.randrange(30)] for _ in range(800)]
        report = entropy_at_timescales(calm + wild, rounds=4)
        assert report.spread > 1.0


class TestPolicyOrderingHolds:
    def test_structure(self):
        sequence = ["a", "b", "a", "c"] * 100
        result = policy_ordering_holds(sequence, rounds=3, capacity=2)
        assert set(result) == {
            "capacity",
            "whole_trace",
            "per_round",
            "holds_at_every_timescale",
        }
        assert len(result["per_round"]) == 3

    def test_holds_on_drifting_workload(self):
        # Alternating fresh successors after a hot phase: the LRU-wins
        # construction from the successor unit tests, per round.
        block = ["a", "b"] * 20 + ["a", "x", "a", "y"] * 20
        result = policy_ordering_holds(block * 4, rounds=4, capacity=2)
        assert result["holds_at_every_timescale"] is True

    def test_verdict_responds_to_tolerance(self):
        # An impossible bar (LRU must beat LFU by a full probability
        # point) must flip the verdict to False on any workload with
        # nonzero miss rates, exercising the failure path.
        sequence = ["a", "b", "a", "c"] * 100
        result = policy_ordering_holds(
            sequence, rounds=2, capacity=1, tolerance=-1.0
        )
        assert result["holds_at_every_timescale"] is False

    def test_whole_trace_pair_is_probabilities(self):
        sequence = ["a", "b", "a", "c"] * 100
        result = policy_ordering_holds(sequence, rounds=2, capacity=2)
        lru, lfu = result["whole_trace"]
        assert 0.0 <= lru <= 1.0
        assert 0.0 <= lfu <= 1.0
