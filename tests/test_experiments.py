"""Unit tests for the experiment definitions (small, fast instances).

These verify structure and internal consistency of each figure
reproduction; the paper-shape assertions on the real workloads live in
test_workload_calibration.py.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    demand_fetches,
    fetch_reduction,
    improvement_over_lru,
    make_server_cache,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig7,
    run_fig8,
    run_headline,
    server_hit_rate,
    workload_sequence,
    workload_trace,
)
from repro.caching.lfu import LFUCache
from repro.caching.lru import LRUCache
from repro.core.aggregating_cache import AggregatingServerCache

EVENTS = 4000  # tiny but structurally sufficient


class TestWorkloadMemoization:
    def test_same_object_returned(self):
        a = workload_trace("server", EVENTS)
        b = workload_trace("server", EVENTS)
        assert a is b

    def test_sequence_matches_trace(self):
        assert list(workload_sequence("server", EVENTS)) == workload_trace(
            "server", EVENTS
        ).file_ids()

    def test_unknown_workload(self):
        with pytest.raises(ExperimentError):
            workload_trace("mainframe", EVENTS)


class TestFig3:
    def test_structure(self):
        figure = run_fig3(
            workload="server",
            events=EVENTS,
            capacities=(50, 100),
            group_sizes=(1, 3),
        )
        assert figure.labels() == ["lru", "g3"]
        assert figure.x_values() == [50.0, 100.0]
        assert figure.figure_id == "fig3-server"

    def test_group_size_one_labelled_lru(self):
        figure = run_fig3(
            workload="write", events=EVENTS, capacities=(50,), group_sizes=(1,)
        )
        assert figure.labels() == ["lru"]

    def test_fetches_decrease_with_capacity(self):
        figure = run_fig3(
            workload="server",
            events=EVENTS,
            capacities=(50, 200, 400),
            group_sizes=(1,),
        )
        ys = figure.get_series("lru").ys()
        assert ys[0] >= ys[1] >= ys[2]

    def test_demand_fetches_helper_matches_series(self):
        figure = run_fig3(
            workload="server", events=EVENTS, capacities=(100,), group_sizes=(1,)
        )
        direct = demand_fetches(workload_sequence("server", EVENTS), 100, 1)
        assert figure.get_series("lru").y_at(100) == direct

    def test_fetch_reduction(self):
        figure = run_fig3(
            workload="server",
            events=EVENTS,
            capacities=(100,),
            group_sizes=(1, 5),
        )
        reduction = fetch_reduction(figure, "g5", 100)
        assert 0.0 <= reduction < 1.0

    def test_rejects_empty_axes(self):
        with pytest.raises(ExperimentError):
            run_fig3(workload="server", events=EVENTS, capacities=())


class TestFig4:
    def test_structure(self):
        figure = run_fig4(
            workload="workstation",
            events=EVENTS,
            filter_capacities=(50, 100),
            server_capacity=50,
            schemes=("g3", "lru"),
        )
        assert figure.labels() == ["g3", "lru"]
        assert len(figure.get_series("lru")) == 2

    def test_make_server_cache(self):
        assert isinstance(make_server_cache("lru", 10), LRUCache)
        assert isinstance(make_server_cache("lfu", 10), LFUCache)
        aggregating = make_server_cache("g7", 10)
        assert isinstance(aggregating, AggregatingServerCache)
        assert aggregating.group_size == 7

    def test_make_server_cache_rejects_unknown(self):
        with pytest.raises(ExperimentError):
            make_server_cache("belady", 10)

    def test_server_hit_rate_percent_range(self):
        rate = server_hit_rate(
            workload_sequence("server", EVENTS), 20, LRUCache(50)
        )
        assert 0.0 <= rate <= 100.0

    def test_improvement_over_lru(self):
        figure = run_fig4(
            workload="server",
            events=EVENTS,
            filter_capacities=(50, 100),
            server_capacity=50,
            schemes=("g5", "lru"),
        )
        improvements = improvement_over_lru(figure, "g5")
        assert set(improvements) == {50.0, 100.0}


class TestFig5:
    def test_structure(self):
        figure = run_fig5(
            workload="server", events=EVENTS, list_sizes=(1, 2), policies=("lru",)
        )
        assert figure.labels() == ["LRU"]
        assert figure.x_values() == [1.0, 2.0]

    def test_oracle_flat(self):
        figure = run_fig5(
            workload="server",
            events=EVENTS,
            list_sizes=(1, 5, 10),
            policies=("oracle",),
        )
        ys = figure.get_series("Oracle").ys()
        assert ys[0] == ys[1] == ys[2]

    def test_probabilities_in_unit_interval(self):
        figure = run_fig5(workload="workstation", events=EVENTS, list_sizes=(1, 4))
        for series in figure.series:
            assert all(0.0 <= y <= 1.0 for y in series.ys())


class TestFig7:
    def test_structure(self):
        figure = run_fig7(
            workloads=("server", "write"), events=EVENTS, lengths=(1, 2, 3)
        )
        assert figure.labels() == ["server", "write"]
        assert figure.x_values() == [1.0, 2.0, 3.0]

    def test_entropies_nonnegative(self):
        figure = run_fig7(workloads=("users",), events=EVENTS, lengths=(1, 5))
        assert all(y >= 0 for y in figure.get_series("users").ys())

    def test_rejects_unknown_workload(self):
        with pytest.raises(ExperimentError):
            run_fig7(workloads=("vax",), events=EVENTS)


class TestFig8:
    def test_structure(self):
        figure = run_fig8(
            workload="write",
            events=EVENTS,
            filter_capacities=(1, 10),
            lengths=(1, 2),
        )
        assert figure.labels() == ["1", "10"]

    def test_rejects_empty(self):
        with pytest.raises(ExperimentError):
            run_fig8(workload="write", events=EVENTS, filter_capacities=())


class TestHeadline:
    def test_report_structure(self):
        report = run_headline(events=EVENTS, client_capacity=100)
        rows = report.to_rows()
        assert rows[0] == ["claim", "paper", "measured"]
        assert len(rows) >= 4
        assert report.events == EVENTS

    def test_reductions_are_fractions(self):
        report = run_headline(events=EVENTS, client_capacity=100)
        assert -1.0 < report.client_reduction_g2 < 1.0
        assert -1.0 < report.client_reduction_g5 < 1.0
