"""Unit tests for the trace event model."""

import pytest

from repro.traces.events import EventKind, Trace, TraceEvent


class TestEventKind:
    def test_from_string_accepts_every_kind(self):
        for kind in EventKind:
            assert EventKind.from_string(kind.value) is kind

    def test_from_string_normalizes_case_and_whitespace(self):
        assert EventKind.from_string("  OPEN ") is EventKind.OPEN
        assert EventKind.from_string("Write") is EventKind.WRITE

    def test_from_string_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            EventKind.from_string("mmap")

    def test_error_lists_valid_names(self):
        with pytest.raises(ValueError, match="open"):
            EventKind.from_string("bogus")


class TestTraceEvent:
    def test_defaults(self):
        event = TraceEvent("x")
        assert event.kind is EventKind.OPEN
        assert event.sequence == -1
        assert event.client_id == ""

    def test_with_sequence_preserves_fields(self):
        event = TraceEvent("x", EventKind.WRITE, client_id="c", user_id="u")
        renumbered = event.with_sequence(7)
        assert renumbered.sequence == 7
        assert renumbered.file_id == "x"
        assert renumbered.kind is EventKind.WRITE
        assert renumbered.client_id == "c"
        assert renumbered.user_id == "u"

    def test_is_open(self):
        assert TraceEvent("x").is_open
        assert not TraceEvent("x", EventKind.READ).is_open

    def test_is_mutation(self):
        assert TraceEvent("x", EventKind.WRITE).is_mutation
        assert TraceEvent("x", EventKind.CREATE).is_mutation
        assert TraceEvent("x", EventKind.DELETE).is_mutation
        assert not TraceEvent("x", EventKind.OPEN).is_mutation
        assert not TraceEvent("x", EventKind.CLOSE).is_mutation

    def test_frozen(self):
        event = TraceEvent("x")
        with pytest.raises(AttributeError):
            event.file_id = "y"


class TestTrace:
    def test_append_assigns_sequence(self):
        trace = Trace()
        trace.append(TraceEvent("a"))
        trace.append(TraceEvent("b"))
        assert [e.sequence for e in trace] == [0, 1]

    def test_append_keeps_explicit_sequence(self):
        trace = Trace()
        trace.append(TraceEvent("a", sequence=42))
        assert trace[0].sequence == 42

    def test_extend_and_len(self):
        trace = Trace()
        trace.extend(TraceEvent(c) for c in "abc")
        assert len(trace) == 3

    def test_file_ids(self):
        trace = Trace.from_file_ids(["a", "b", "a"])
        assert trace.file_ids() == ["a", "b", "a"]

    def test_unique_files(self):
        trace = Trace.from_file_ids(["a", "b", "a", "c"])
        assert trace.unique_files() == 3

    def test_open_events_projection(self, mixed_trace):
        opens = mixed_trace.open_events()
        assert opens.file_ids() == ["a", "a"]
        assert [e.sequence for e in opens] == [0, 1]

    def test_open_events_preserves_attribution(self, mixed_trace):
        opens = mixed_trace.open_events()
        assert opens[0].client_id == "c1"

    def test_slice_renumbers(self):
        trace = Trace.from_file_ids(list("abcdef"))
        sliced = trace.slice(2, 5)
        assert sliced.file_ids() == ["c", "d", "e"]
        assert [e.sequence for e in sliced] == [0, 1, 2]

    def test_slice_open_ended(self):
        trace = Trace.from_file_ids(list("abcd"))
        assert trace.slice(2).file_ids() == ["c", "d"]

    def test_getitem(self):
        trace = Trace.from_file_ids(["a", "b"])
        assert trace[1].file_id == "b"

    def test_iteration_order(self):
        trace = Trace.from_file_ids(list("xyz"))
        assert [e.file_id for e in trace] == ["x", "y", "z"]

    def test_from_file_ids_kind(self):
        trace = Trace.from_file_ids(["a"], kind=EventKind.WRITE)
        assert trace[0].kind is EventKind.WRITE
