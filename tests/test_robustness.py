"""Unit + shape tests for seed-robustness analysis."""

import pytest

from repro.analysis.robustness import (
    band_figure,
    ordering_holds_for_every_seed,
    seed_sweep,
)
from repro.analysis.series import FigureData
from repro.errors import AnalysisError


def toy_builder(seed):
    """A deterministic toy figure whose values shift with the seed."""
    figure = FigureData("toy", "Toy", "x", "y")
    low = figure.add_series("low")
    high = figure.add_series("high")
    for x in (1, 2, 3):
        low.add(x, x + seed * 0.1)
        high.add(x, x + 10 + seed * 0.1)
    return figure


class TestSeedSweep:
    def test_bands_cover_all_seeds(self):
        figures, bands = seed_sweep(toy_builder, seeds=[0, 1, 2])
        assert len(figures) == 3
        band = bands["low"]
        assert band.xs == [1.0, 2.0, 3.0]
        assert band.minimums[0] == pytest.approx(1.0)
        assert band.maximums[0] == pytest.approx(1.2)
        assert band.means[0] == pytest.approx(1.1)

    def test_spread(self):
        _, bands = seed_sweep(toy_builder, seeds=[0, 5])
        assert bands["low"].spread_at(1.0) == pytest.approx(0.5)
        assert bands["low"].worst_spread == pytest.approx(0.5)

    def test_requires_seeds(self):
        with pytest.raises(AnalysisError):
            seed_sweep(toy_builder, seeds=[])

    def test_rejects_ragged_runs(self):
        def ragged(seed):
            figure = FigureData("r", "R", "x", "y")
            series = figure.add_series("s")
            series.add(1, 1)
            if seed:
                series.add(2, 2)
            return figure

        with pytest.raises(AnalysisError, match="disagree"):
            seed_sweep(ragged, seeds=[0, 1])


class TestOrderingHolds:
    def test_lower_direction(self):
        figures, _ = seed_sweep(toy_builder, seeds=[0, 1, 2])
        assert ordering_holds_for_every_seed(figures, "low", "high", "lower")
        assert not ordering_holds_for_every_seed(figures, "high", "low", "lower")

    def test_higher_direction(self):
        figures, _ = seed_sweep(toy_builder, seeds=[0, 1])
        assert ordering_holds_for_every_seed(figures, "high", "low", "higher")

    def test_bad_direction(self):
        figures, _ = seed_sweep(toy_builder, seeds=[0])
        with pytest.raises(AnalysisError):
            ordering_holds_for_every_seed(figures, "low", "high", "sideways")


class TestBandFigure:
    def test_triples_per_series(self):
        _, bands = seed_sweep(toy_builder, seeds=[0, 1])
        figure = band_figure(bands, "b", "Bands", "x", "y")
        assert set(figure.labels()) == {
            "low:min", "low:mean", "low:max",
            "high:min", "high:mean", "high:max",
        }


class TestPaperResultRobustness:
    """The headline orderings must hold for every seed, not just the default."""

    SEEDS = (11, 22, 33)
    EVENTS = 8000

    def test_fig3_grouping_wins_across_seeds(self):
        from repro.experiments import run_fig3

        figures, bands = seed_sweep(
            lambda seed: run_fig3(
                workload="server",
                events=self.EVENTS,
                capacities=(100, 300),
                group_sizes=(1, 5),
                seed=seed,
            ),
            seeds=self.SEEDS,
        )
        assert ordering_holds_for_every_seed(figures, "g5", "lru", "lower")
        # Seeds vary trace difficulty, so bands may overlap across
        # seeds; the *mean* separation is what must be decisive.
        for index in range(len(bands["g5"].xs)):
            assert bands["g5"].means[index] < bands["lru"].means[index] * 0.85

    def test_fig4_resilience_across_seeds(self):
        from repro.experiments import run_fig4

        figures, _ = seed_sweep(
            lambda seed: run_fig4(
                workload="workstation",
                events=self.EVENTS,
                filter_capacities=(100, 400),
                server_capacity=200,
                schemes=("g5", "lru"),
                seed=seed,
            ),
            seeds=self.SEEDS,
        )
        assert ordering_holds_for_every_seed(figures, "g5", "lru", "higher")

    def test_entropy_ordering_across_seeds(self):
        from repro.core.entropy import successor_entropy
        from repro.workloads import make_server, make_users

        for seed in self.SEEDS:
            server = successor_entropy(
                make_server(self.EVENTS, seed=seed).file_ids()
            )
            users = successor_entropy(
                make_users(self.EVENTS, seed=seed).file_ids()
            )
            assert server < users, seed
            assert server < 1.2, seed
