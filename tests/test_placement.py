"""Unit tests for the placement subsystem."""

import pytest

from repro.errors import SimulationError
from repro.placement.disk import (
    DiskLayout,
    SeekStats,
    layout_from_order,
    organ_pipe_order,
)
from repro.placement.strategies import (
    PLACEMENTS,
    compare_placements,
    frequency_layout,
    group_layout,
    name_order_layout,
    random_layout,
    replicated_group_layout,
)


class TestSeekStats:
    def test_record_and_mean(self):
        stats = SeekStats()
        stats.record(10)
        stats.record(0)
        stats.record(20)
        assert stats.requests == 3
        assert stats.mean_distance == pytest.approx(10.0)
        assert stats.max_distance == 20

    def test_empty(self):
        assert SeekStats().mean_distance == 0.0


class TestDiskLayout:
    def test_positions_and_capacity(self):
        layout = DiskLayout(["a", "b", None, "a"])
        assert layout.capacity == 4
        assert layout.used_slots == 3
        assert layout.replica_count("a") == 2
        assert layout.replica_count("z") == 0

    def test_nearest_position_picks_closest_replica(self):
        layout = DiskLayout(["a", None, None, None, "a"])
        assert layout.nearest_position("a", 1) == 0
        assert layout.nearest_position("a", 3) == 4
        assert layout.nearest_position("a", 0) == 0

    def test_missing_file_raises(self):
        layout = DiskLayout(["a"])
        with pytest.raises(SimulationError, match="not placed"):
            layout.nearest_position("ghost", 0)

    def test_replay_accounts_seeks(self):
        layout = DiskLayout(["a", "b", "c"])
        stats = layout.replay(["a", "c", "b"], start=0)
        # head: 0 -> 0 (dist 0), -> 2 (dist 2), -> 1 (dist 1)
        assert stats.total_distance == 3
        assert stats.requests == 3

    def test_replay_uses_nearest_replica(self):
        single = DiskLayout(["x", "f1", "f2", "f3", "f4"])
        replicated = DiskLayout(["x", "f1", "f2", "f3", "f4", "x"])
        sequence = ["x", "f4", "x", "f4", "x"]
        assert (
            replicated.replay(sequence).total_distance
            < single.replay(sequence).total_distance
        )

    def test_replication_overhead(self):
        assert DiskLayout(["a", "b"]).replication_overhead() == 0.0
        assert DiskLayout(["a", "b", "a"]).replication_overhead() == pytest.approx(0.5)
        assert DiskLayout([]).replication_overhead() == 0.0

    def test_layout_from_order_with_capacity(self):
        layout = layout_from_order(["a", "b"], capacity=5)
        assert layout.capacity == 5
        assert layout.used_slots == 2
        with pytest.raises(SimulationError):
            layout_from_order(["a", "b"], capacity=1)


class TestOrganPipe:
    def test_hottest_in_middle(self):
        order = organ_pipe_order({"hot": 100, "warm": 10, "cold": 1})
        assert order[1] == "hot"

    def test_even_count_stays_in_bounds(self):
        order = organ_pipe_order({f"f{i}": 10 - i for i in range(4)})
        assert sorted(order) == [f"f{i}" for i in range(4)]
        assert len(order) == 4

    def test_single_file(self):
        assert organ_pipe_order({"only": 5}) == ["only"]

    def test_deterministic_ties(self):
        a = organ_pipe_order({"a": 1, "b": 1, "c": 1})
        b = organ_pipe_order({"a": 1, "b": 1, "c": 1})
        assert a == b


class TestStrategies:
    CHAIN = [f"f{i:02d}" for i in range(20)]

    def _chained_sequence(self):
        return self.CHAIN * 10

    def test_name_order_places_all(self):
        layout = name_order_layout(self._chained_sequence())
        assert set(layout.files()) == set(self.CHAIN)

    def test_random_deterministic(self):
        a = random_layout(self._chained_sequence(), seed=3)
        b = random_layout(self._chained_sequence(), seed=3)
        assert list(a.slots) == list(b.slots)

    def test_frequency_layout_places_all(self):
        layout = frequency_layout(self._chained_sequence())
        assert layout.used_slots == len(self.CHAIN)

    def test_group_layout_collocates_chain(self):
        sequence = self._chained_sequence()
        grouped = group_layout(sequence, group_size=5)
        stats = grouped.replay(sequence)
        scattered = random_layout(sequence, seed=1).replay(sequence)
        assert stats.mean_distance < scattered.mean_distance

    def test_group_layout_is_partition(self):
        layout = group_layout(self._chained_sequence(), group_size=5)
        assert layout.replication_overhead() == 0.0

    def test_replicated_layout_bounds_replicas(self):
        # A hub followed by many contexts joins several groups.
        sequence = []
        for i in range(8):
            sequence += ["hub", f"a{i}", f"b{i}", "hub", f"a{i}", f"b{i}"]
        layout = replicated_group_layout(sequence, group_size=3, max_replicas=2)
        assert layout.replica_count("hub") <= 2
        assert layout.replica_count("hub") >= 1

    def test_replicated_layout_places_everything(self):
        sequence = self._chained_sequence()
        layout = replicated_group_layout(sequence, group_size=4)
        assert set(layout.files()) == set(self.CHAIN)

    def test_registry_complete(self):
        sequence = self._chained_sequence()
        for name, factory in PLACEMENTS.items():
            layout = factory(sequence, 5)
            assert set(layout.files()) >= set(self.CHAIN), name


class TestComparePlacements:
    def test_grouped_beats_random_on_chains(self):
        chain = [f"f{i:02d}" for i in range(40)]
        sequence = chain * 20
        half = len(sequence) // 2
        results = compare_placements(sequence[:half], sequence[half:], group_size=8)
        assert results["grouped"]["mean_seek"] < results["random"]["mean_seek"]
        assert results["grouped"]["mean_seek"] < results["frequency"]["mean_seek"]

    def test_only_requested_strategies(self):
        sequence = ["a", "b"] * 50
        results = compare_placements(
            sequence[:50], sequence[50:], strategies=["random"]
        )
        assert list(results) == ["random"]

    def test_unseen_test_files_skipped(self):
        results = compare_placements(
            ["a", "b"] * 10, ["a", "zzz", "b"], strategies=["name"]
        )
        # 'zzz' was never trained: replay must not raise.
        assert results["name"]["mean_seek"] >= 0.0
