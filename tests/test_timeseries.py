"""Unit and equivalence tests for windowed time-series telemetry.

The load-bearing contract here is the acceptance criterion from the
observability roadmap: the windowed series recorded while the *fast*
replay loop runs must be sample-identical (modulo wall-clock fields) to
the series recorded while the *generic* loop runs, and activating
windowing must not change the end-of-run metrics at all.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.analysis.predictability import entropy_timeline
from repro.obs import (
    ObservabilityError,
    TS_SCHEMA,
    WindowSample,
    WindowedCollector,
    get_collector,
    load_ts_jsonl,
    prometheus_text,
    serve_metrics,
    set_collector,
    ts_records,
    windowed_replay,
    windowing,
    write_ts_jsonl,
)
from repro.sim.engine import DistributedFileSystem
from repro.sim.sweep import SweepGrid, run_sweep
from repro.traces.events import Trace, TraceEvent
from repro.workloads.synthetic import make_workload


@pytest.fixture(autouse=True)
def _no_leaked_collector():
    """Every test must leave the module-global hook dormant."""
    assert get_collector() is None
    yield
    set_collector(None)


def _system(**overrides):
    defaults = dict(client_capacity=150, server_capacity=200, group_size=4)
    defaults.update(overrides)
    return DistributedFileSystem(**defaults)


def _trace(events=4000):
    return make_workload("server", events, seed=7)


def square_point(n):
    """Module-level (hence picklable) point runner for parallel tests."""
    return {"square": n * n, "events": n}


class TestWindowSample:
    def test_derived_ratios(self):
        sample = WindowSample(
            events=100,
            seconds=2.0,
            hits=60,
            misses=40,
            remote_requests=40,
            store_fetches=50,
            group_installs=30,
            companion_slots=120,
            speculative_fetches=10,
            evictions=5,
        )
        assert sample.hit_ratio == pytest.approx(0.6)
        assert sample.eviction_rate == pytest.approx(0.05)
        assert sample.events_per_sec == pytest.approx(50.0)
        assert sample.prefetch_efficiency == pytest.approx(30 / 120)
        assert sample.wasted_fetch_share == pytest.approx(10 / 50)

    def test_ratios_defined_on_empty_window(self):
        sample = WindowSample()
        assert sample.hit_ratio == 0.0
        assert sample.eviction_rate == 0.0
        assert sample.events_per_sec == 0.0
        assert sample.prefetch_efficiency == 0.0
        assert sample.wasted_fetch_share == 0.0

    def test_deterministic_dict_excludes_wall_clock(self):
        payload = WindowSample(events=10, seconds=1.5).deterministic_dict()
        assert "seconds" not in payload
        assert "events_per_sec" not in payload
        assert payload["events"] == 10

    def test_round_trip_via_dict(self):
        sample = WindowSample(
            source="sweep",
            index=3,
            start=7,
            events=5,
            seconds=0.25,
            hits=4,
            misses=1,
            entropy=1.25,
            label="g=4",
        )
        assert WindowSample.from_dict(sample.to_dict()) == sample

    def test_round_trip_preserves_none_entropy(self):
        sample = WindowSample(entropy=None)
        assert WindowSample.from_dict(sample.to_dict()).entropy is None


class TestWindowedCollector:
    def test_rejects_bad_window(self):
        with pytest.raises(ObservabilityError):
            WindowedCollector(window=0)

    def test_rejects_bad_bytes_per_file(self):
        with pytest.raises(ObservabilityError):
            WindowedCollector(bytes_per_file=0)

    def test_series_skips_none_entropy(self):
        collector = WindowedCollector(window=10)
        collector.append(WindowSample(index=0, entropy=None))
        collector.append(WindowSample(index=1, entropy=2.0))
        assert collector.series("entropy") == [2.0]

    def test_series_filters_by_source(self):
        collector = WindowedCollector(window=10)
        collector.append(WindowSample(source="replay", events=5))
        collector.append(WindowSample(source="sweep", events=9))
        assert collector.series("events", source="sweep") == [9.0]

    def test_on_sample_hook_fans_out(self):
        seen = []
        collector = WindowedCollector(window=10, on_sample=seen.append)
        sample = WindowSample(index=0)
        collector.append(sample)
        assert seen == [sample]

    def test_record_point_labels_and_counts(self):
        collector = WindowedCollector(window=10)
        first = collector.record_point(
            0, {"g": 4, "c": 100}, {"events": 500}, 0.5
        )
        second = collector.record_point(1, {"g": 8, "c": 100}, {}, 0.25)
        assert first.source == "sweep"
        assert first.label == "g=4,c=100"
        assert first.events == 500
        assert second.events == 0
        assert [s.index for s in collector.sweep_samples()] == [0, 1]


class TestWindowedReplay:
    def test_window_count_and_positions(self):
        trace = _trace(4500)
        with windowing(window=1000) as collector:
            _system().replay(trace)
        samples = collector.replay_samples()
        assert len(samples) == 5
        assert [s.start for s in samples] == [0, 1000, 2000, 3000, 4000]
        assert [s.index for s in samples] == [0, 1, 2, 3, 4]
        assert [s.events for s in samples] == [1000, 1000, 1000, 1000, 500]
        assert sum(s.events for s in samples) == len(trace)

    def test_final_metrics_identical_to_unwindowed(self):
        trace = _trace()
        baseline = _system().replay(trace)
        with windowing(window=700):
            windowed = _system().replay(trace)
        assert windowed == baseline

    def test_fast_and_generic_series_sample_identical(self):
        """The acceptance criterion: fast == generic, window by window."""
        trace = _trace()
        with windowing(window=500) as fast_collector:
            _system().replay(trace)

        generic_system = _system()
        generic_system._fast_replay_ok = lambda: False
        with windowing(window=500) as generic_collector:
            generic_system.replay(trace)

        fast = [s.deterministic_dict() for s in fast_collector.samples]
        generic = [s.deterministic_dict() for s in generic_collector.samples]
        assert fast == generic

    def test_interned_series_sample_identical(self):
        trace = _trace()
        with windowing(window=500) as plain:
            _system().replay(trace)
        with windowing(window=500) as interned:
            _system().replay(trace, intern=True)
        assert [s.deterministic_dict() for s in interned.samples] == [
            s.deterministic_dict() for s in plain.samples
        ]

    def test_window_entropy_matches_predictability_tooling(self):
        trace = _trace(3000)
        with windowing(window=1000) as collector:
            _system().replay(trace)
        ids = [event.file_id for event in trace.events]
        for sample in collector.replay_samples():
            chunk = ids[sample.start : sample.start + sample.events]
            expected = entropy_timeline(chunk, window=len(chunk))[0][1]
            assert sample.entropy == pytest.approx(expected)

    def test_entropy_flag_off_skips_computation(self):
        with windowing(window=1000, entropy=False) as collector:
            _system().replay(_trace(2000))
        assert all(s.entropy is None for s in collector.samples)

    def test_counter_sums_match_final_metrics(self):
        trace = _trace()
        with windowing(window=600) as collector:
            metrics = _system().replay(trace)
        totals = collector.totals()
        client_hits = sum(s.hits for s in metrics.client_stats.values())
        client_misses = sum(s.misses for s in metrics.client_stats.values())
        assert totals["events"] == len(trace)
        assert totals["hits"] == client_hits
        assert totals["misses"] == client_misses
        assert totals["remote_requests"] == metrics.remote_requests
        assert totals["store_fetches"] == metrics.store_fetches

    def test_collector_suspended_during_chunk_replay(self):
        """The recursion guard: chunks replay with the hook dormant."""
        observed = []

        def spy(sample):
            observed.append(get_collector())

        with windowing(window=1000, on_sample=spy):
            _system().replay(_trace(2000))
        assert observed and all(active is None for active in observed)

    def test_context_restores_previous_collector(self):
        outer = WindowedCollector(window=10)
        set_collector(outer)
        try:
            with windowing(window=5) as inner:
                assert get_collector() is inner
            assert get_collector() is outer
        finally:
            set_collector(None)

    def test_successive_replays_keep_monotone_cursors(self):
        trace = _trace(2000)
        with windowing(window=1000) as collector:
            _system().replay(trace)
            _system().replay(trace)
        samples = collector.replay_samples()
        assert [s.index for s in samples] == [0, 1, 2, 3]
        assert [s.start for s in samples] == [0, 1000, 2000, 3000]

    def test_requires_a_collector(self):
        with pytest.raises(ObservabilityError, match="collector"):
            windowed_replay(_system(), _trace(100))

    def test_progress_reports_each_window(self):
        seen = []
        with windowing(window=1000):
            _system().replay(
                _trace(3000),
                progress=lambda i, total, params, elapsed: seen.append(
                    (i, total, params["window"], params["start"])
                ),
            )
        assert seen == [(0, 3, 0, 0), (1, 3, 1, 1000), (2, 3, 2, 2000)]

    def test_dormant_replay_records_nothing(self):
        collector = WindowedCollector(window=100)
        _system().replay(_trace(500))
        assert len(collector) == 0
        assert get_collector() is None


class TestSweepSamples:
    def test_serial_sweep_streams_points(self):
        grid = SweepGrid().add_axis("n", [1, 2, 3])
        with windowing(window=10) as collector:
            records = run_sweep(grid, square_point)
        samples = collector.sweep_samples()
        assert [record["square"] for record in records] == [1, 4, 9]
        assert len(samples) == 3
        assert [s.start for s in samples] == [0, 1, 2]
        assert [s.label for s in samples] == ["n=1", "n=2", "n=3"]
        assert [s.events for s in samples] == [1, 2, 3]

    def test_parallel_sweep_aggregates_in_parent(self):
        grid = SweepGrid().add_axis("n", [1, 2, 3, 4])
        with windowing(window=10) as collector:
            records = run_sweep(grid, square_point, workers=2)
        serial = run_sweep(grid, square_point)
        assert records == serial
        samples = collector.sweep_samples()
        assert len(samples) == 4
        assert sorted(s.label for s in samples) == ["n=1", "n=2", "n=3", "n=4"]


class TestJsonlRoundTrip:
    def _collector_with_samples(self):
        with windowing(window=500) as collector:
            _system().replay(_trace(1500))
        collector.record_point(0, {"g": 4}, {"events": 1500}, 0.1)
        return collector

    def test_round_trip_preserves_samples(self, tmp_path):
        collector = self._collector_with_samples()
        path = tmp_path / "series.jsonl"
        lines = write_ts_jsonl(collector, path, meta={"workload": "server"})
        assert lines == len(collector.samples) + 1
        loaded = load_ts_jsonl(path)
        assert loaded["samples"] == collector.samples
        assert loaded["meta"]["workload"] == "server"
        assert loaded["meta"]["window"] == 500
        assert loaded["meta"]["samples"] == len(collector.samples)

    def test_meta_line_is_first_and_schema_tagged(self):
        collector = self._collector_with_samples()
        records = ts_records(collector)
        assert records[0]["kind"] == "meta"
        assert records[0]["schema"] == TS_SCHEMA
        assert all(record["kind"] == "sample" for record in records[1:])

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "meta", "schema": "repro.obs/1"}) + "\n")
        with pytest.raises(ObservabilityError, match="unsupported schema"):
            load_ts_jsonl(path)

    def test_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        record = WindowSample(events=1, hits=1).to_dict()
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ObservabilityError, match="no repro.ts/1 meta"):
            load_ts_jsonl(path)

    def test_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "mystery"}) + "\n")
        with pytest.raises(ObservabilityError, match="unknown record kind"):
            load_ts_jsonl(path)

    def test_rejects_non_numeric_required_field(self, tmp_path):
        record = WindowSample(events=1).to_dict()
        record["hits"] = "many"
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": TS_SCHEMA})
            + "\n"
            + json.dumps(record)
            + "\n"
        )
        with pytest.raises(ObservabilityError, match="numeric 'hits'"):
            load_ts_jsonl(path)

    def test_rejects_unknown_source(self, tmp_path):
        record = WindowSample(events=1).to_dict()
        record["source"] = "oracle"
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "schema": TS_SCHEMA})
            + "\n"
            + json.dumps(record)
            + "\n"
        )
        with pytest.raises(ObservabilityError, match="unknown sample source"):
            load_ts_jsonl(path)

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            load_ts_jsonl(path)


class TestPrometheusText:
    def test_counters_and_gauges_render(self):
        with windowing(window=500) as collector:
            _system().replay(_trace(1500))
        text = prometheus_text(collector)
        totals = collector.totals()
        assert f"repro_ts_events_total {totals['events']}" in text
        assert f"repro_ts_hits_total {totals['hits']}" in text
        assert "repro_ts_windows_total 3" in text
        assert "# TYPE repro_ts_hit_ratio gauge" in text
        assert text.endswith("# EOF\n")

    def test_every_sample_line_parses(self):
        with windowing(window=500) as collector:
            _system().replay(_trace(1500))
        for line in prometheus_text(collector).splitlines():
            if line.startswith("#"):
                continue
            name, value = line.split()
            assert name.startswith("repro_ts_")
            float(value)

    def test_accepts_plain_sample_sequence(self):
        samples = [WindowSample(index=0, events=10, hits=8, misses=2)]
        text = prometheus_text(samples)
        assert "repro_ts_events_total 10" in text
        assert "repro_ts_hit_ratio 0.8" in text

    def test_no_gauges_without_replay_samples(self):
        collector = WindowedCollector(window=10)
        collector.record_point(0, {"g": 4}, {}, 0.1)
        text = prometheus_text(collector)
        assert "repro_ts_hit_ratio" not in text
        assert "repro_ts_windows_total 1" in text


class TestMetricsServer:
    def test_serves_rendered_metrics(self):
        with windowing(window=500) as collector:
            _system().replay(_trace(1000))
        server = serve_metrics(collector)
        try:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                assert response.status == 200
                assert "text/plain" in response.headers["Content-Type"]
                body = response.read().decode("utf-8")
            assert body == prometheus_text(collector)
        finally:
            server.close()

    def test_unknown_path_is_404(self):
        server = serve_metrics(WindowedCollector(window=10))
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://{server.host}:{server.port}/other", timeout=5
                )
            assert excinfo.value.code == 404
        finally:
            server.close()


class TestHandBuiltTraces:
    def test_windowing_composes_with_explicit_trace(self):
        events = [TraceEvent(file_id=f"f{i % 3}") for i in range(10)]
        trace = Trace(events=events, name="tiny")
        with windowing(window=4) as collector:
            DistributedFileSystem(client_capacity=2).replay(trace)
        samples = collector.replay_samples()
        assert [s.events for s in samples] == [4, 4, 2]
        # The final 2-event window still has defined entropy input.
        assert samples[-1].entropy is not None
