"""Tests for the CI perf-regression gate (scripts/check_bench.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench.py"
_spec = importlib.util.spec_from_file_location("check_bench", _SCRIPT)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _bench_file(tmp_path, name, benchmarks):
    """Write a minimal pytest-benchmark JSON and return its path."""
    path = tmp_path / name
    path.write_text(json.dumps({"benchmarks": benchmarks}))
    return path


def _bench(name, eps=None, median=None):
    record = {"name": name, "stats": {}, "extra_info": {}}
    if eps is not None:
        record["extra_info"]["events_per_second"] = eps
    if median is not None:
        record["stats"]["median"] = median
    return record


class TestEventsPerSecond:
    def test_prefers_extra_info_throughput(self):
        bench = _bench("b", eps=1000, median=0.5)
        assert check_bench.events_per_second(bench) == 1000

    def test_falls_back_to_inverse_median(self):
        bench = _bench("b", median=0.25)
        assert check_bench.events_per_second(bench) == pytest.approx(4.0)

    def test_unmeasurable_benchmark_returns_none(self):
        assert check_bench.events_per_second(_bench("b")) is None
        assert check_bench.events_per_second(_bench("b", median=0)) is None


class TestCompare:
    def test_identical_runs_have_no_regressions(self):
        table = {"b": _bench("b", eps=1000)}
        comparisons, missing, extra = check_bench.compare(table, dict(table))
        assert not missing and not extra
        assert len(comparisons) == 1
        assert not comparisons[0]["regressed"]

    def test_thirty_percent_drop_regresses_at_default_threshold(self):
        baseline = {"b": _bench("b", eps=1000)}
        fresh = {"b": _bench("b", eps=700)}
        comparisons, _, _ = check_bench.compare(baseline, fresh)
        assert comparisons[0]["regressed"]

    def test_twenty_percent_drop_passes_at_default_threshold(self):
        baseline = {"b": _bench("b", eps=1000)}
        fresh = {"b": _bench("b", eps=800)}
        comparisons, _, _ = check_bench.compare(baseline, fresh)
        assert not comparisons[0]["regressed"]

    def test_strict_names_use_the_strict_threshold(self):
        baseline = {"b": _bench("b", eps=1000)}
        fresh = {"b": _bench("b", eps=900)}  # -10%: fine at 25%, not at 5%
        loose, _, _ = check_bench.compare(baseline, fresh)
        assert not loose[0]["regressed"] and not loose[0]["strict"]
        strict, _, _ = check_bench.compare(baseline, fresh, strict=["b"])
        assert strict[0]["regressed"] and strict[0]["strict"]
        assert strict[0]["threshold"] == 0.05

    def test_strict_allows_small_drift(self):
        baseline = {"b": _bench("b", eps=1000)}
        fresh = {"b": _bench("b", eps=960)}  # -4%: within the 5% bar
        comparisons, _, _ = check_bench.compare(baseline, fresh, strict=["b"])
        assert not comparisons[0]["regressed"]

    def test_missing_and_extra_names_are_reported_not_compared(self):
        baseline = {"old": _bench("old", eps=10), "both": _bench("both", eps=10)}
        fresh = {"new": _bench("new", eps=10), "both": _bench("both", eps=10)}
        comparisons, missing, extra = check_bench.compare(baseline, fresh)
        assert [row["name"] for row in comparisons] == ["both"]
        assert missing == ["old"]
        assert extra == ["new"]


class TestMain:
    def test_identical_baselines_pass(self, tmp_path):
        benches = [_bench("a", eps=1000), _bench("b", median=0.1)]
        baseline = _bench_file(tmp_path, "base.json", benches)
        fresh = _bench_file(tmp_path, "fresh.json", benches)
        code = check_bench.main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        )
        assert code == 0

    def test_committed_baseline_passes_against_itself(self):
        baseline = str(_SCRIPT.parent.parent / "BENCH_micro.json")
        code = check_bench.main(["--baseline", baseline, "--fresh", baseline])
        assert code == 0

    def test_thirty_percent_regression_fails(self, tmp_path, capsys):
        baseline = _bench_file(tmp_path, "base.json", [_bench("a", eps=1000)])
        fresh = _bench_file(tmp_path, "fresh.json", [_bench("a", eps=700)])
        code = check_bench.main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regressed" in captured.err

    def test_missing_and_extra_names_warn_but_pass(self, tmp_path, capsys):
        baseline = _bench_file(
            tmp_path, "base.json", [_bench("kept", eps=10), _bench("gone", eps=10)]
        )
        fresh = _bench_file(
            tmp_path, "fresh.json", [_bench("kept", eps=10), _bench("added", eps=10)]
        )
        code = check_bench.main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warning" in out and "gone" in out and "added" in out

    def test_no_common_benchmarks_fails(self, tmp_path):
        baseline = _bench_file(tmp_path, "base.json", [_bench("a", eps=10)])
        fresh = _bench_file(tmp_path, "fresh.json", [_bench("b", eps=10)])
        code = check_bench.main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        )
        assert code == 1

    def test_missing_file_is_an_error_not_a_crash(self, tmp_path, capsys):
        baseline = _bench_file(tmp_path, "base.json", [_bench("a", eps=10)])
        code = check_bench.main(
            ["--baseline", str(baseline), "--fresh", str(tmp_path / "nope.json")]
        )
        assert code == 1
        assert "not found" in capsys.readouterr().err

    def test_strict_gate_fails_a_ten_percent_drop(self, tmp_path, capsys):
        baseline = _bench_file(tmp_path, "base.json", [_bench("a", eps=1000)])
        fresh = _bench_file(tmp_path, "fresh.json", [_bench("a", eps=900)])
        args = ["--baseline", str(baseline), "--fresh", str(fresh)]
        assert check_bench.main(args) == 0
        assert check_bench.main(args + ["--strict", "a"]) == 1
        assert "[strict]" in capsys.readouterr().out

    def test_missing_strict_benchmark_fails_the_gate(self, tmp_path, capsys):
        baseline = _bench_file(tmp_path, "base.json", [_bench("a", eps=10)])
        fresh = _bench_file(tmp_path, "fresh.json", [_bench("a", eps=10)])
        code = check_bench.main(
            [
                "--baseline",
                str(baseline),
                "--fresh",
                str(fresh),
                "--strict",
                "vanished",
            ]
        )
        assert code == 1
        assert "strict benchmark(s) missing" in capsys.readouterr().err

    def test_ci_strict_benches_exist_in_committed_baseline(self):
        # The Makefile/CI strict names must track benchmark renames.
        baseline = check_bench.load_benchmarks(
            _SCRIPT.parent.parent / "BENCH_micro.json"
        )
        for name in (
            "test_system_replay_throughput",
            "test_system_replay_interned_throughput",
            "test_aggregating_replay_fast_throughput",
            "test_columnar_kernel_replay_throughput",
            "test_columnar_kernel_v2_replay_throughput",
            "test_array_lru_throughput",
            "test_columnar_scan_pure_int_throughput",
        ):
            assert name in baseline

    def test_kernel_speedup_summary_line(self, tmp_path, capsys):
        benches = [
            _bench("test_columnar_kernel_replay_throughput", eps=1_000_000),
            _bench("test_columnar_kernel_v2_replay_throughput", eps=2_500_000),
        ]
        baseline = _bench_file(tmp_path, "base.json", benches)
        fresh = _bench_file(tmp_path, "fresh.json", benches)
        code = check_bench.main(
            ["--baseline", str(baseline), "--fresh", str(fresh)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "kernel speedup" in out
        assert "2.50x" in out

    def test_speedup_line_absent_without_both_kernels(self, tmp_path, capsys):
        assert check_bench.kernel_speedup_line({}) is None
        assert (
            check_bench.kernel_speedup_line(
                {
                    "test_columnar_kernel_replay_throughput": _bench(
                        "test_columnar_kernel_replay_throughput", eps=10
                    )
                }
            )
            is None
        )

    def test_custom_threshold_tightens_the_gate(self, tmp_path):
        baseline = _bench_file(tmp_path, "base.json", [_bench("a", eps=1000)])
        fresh = _bench_file(tmp_path, "fresh.json", [_bench("a", eps=900)])
        code = check_bench.main(
            [
                "--baseline",
                str(baseline),
                "--fresh",
                str(fresh),
                "--threshold",
                "0.05",
            ]
        )
        assert code == 1
