"""Unit tests for LRUCache, including aggregating-cache placement support."""

import pytest

from repro.caching.lru import LRUCache
from repro.errors import CacheConfigurationError


class TestBasics:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(CacheConfigurationError):
            LRUCache(0)
        with pytest.raises(CacheConfigurationError):
            LRUCache(-3)

    def test_miss_then_hit(self):
        cache = LRUCache(2)
        assert cache.access("a") is False
        assert cache.access("a") is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # a is now MRU
        cache.access("c")  # evicts b
        assert "b" not in cache
        assert "a" in cache
        assert "c" in cache

    def test_victim(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.access(key)
        assert cache.victim() == "a"
        cache.access("a")
        assert cache.victim() == "b"

    def test_len_and_contains(self):
        cache = LRUCache(5)
        cache.access("a")
        cache.access("b")
        assert len(cache) == 2
        assert "a" in cache
        assert "z" not in cache

    def test_probe_has_no_side_effects(self):
        cache = LRUCache(2)
        cache.access("a")
        cache.access("b")
        assert cache.probe("a") is True
        cache.access("c")  # should evict a (probe must not have promoted it)
        assert "a" not in cache

    def test_invalidate(self):
        cache = LRUCache(2)
        cache.access("a")
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert "a" not in cache

    def test_clear_keeps_stats(self):
        cache = LRUCache(2)
        cache.access("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1

    def test_keys_order_lru_to_mru(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.access(key)
        cache.access("a")
        assert list(cache.keys()) == ["b", "c", "a"]

    def test_recency_rank(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.access(key)
        assert cache.recency_rank("c") == 0
        assert cache.recency_rank("a") == 2
        with pytest.raises(KeyError):
            cache.recency_rank("zzz")

    def test_eviction_counter(self):
        cache = LRUCache(1)
        cache.access("a")
        cache.access("b")
        assert cache.stats.evictions == 1


class TestInstall:
    def test_install_does_not_count_as_demand(self):
        cache = LRUCache(2)
        assert cache.install("a") is True
        assert cache.stats.accesses == 0
        assert cache.stats.installs == 1

    def test_install_resident_is_noop(self):
        cache = LRUCache(2)
        cache.access("a")
        assert cache.install("a") is False
        assert cache.stats.installs == 0

    def test_install_at_tail_is_first_victim(self):
        cache = LRUCache(3)
        cache.access("a")
        cache.access("b")
        cache.install_at_tail("t")
        cache.access("c")  # cache full: evicts t, the tail install
        assert "t" not in cache
        assert "a" in cache

    def test_install_at_tail_does_not_promote_resident(self):
        cache = LRUCache(3)
        cache.access("a")
        cache.access("b")
        assert cache.install_at_tail("a") is False
        assert cache.victim() == "a"


class TestInstallGroupAtTail:
    def test_group_members_do_not_evict_each_other(self):
        # Regression test for the self-eviction bug: installing a group
        # into a full cache must evict old residents, not the group's
        # own earlier members.
        cache = LRUCache(10)
        for i in range(10):
            cache.access(f"old{i}")
        installed = cache.install_group_at_tail(["g1", "g2", "g3", "g4"])
        assert installed == 4
        for member in ("g1", "g2", "g3", "g4"):
            assert member in cache

    def test_farthest_prediction_evicted_first(self):
        cache = LRUCache(10)
        cache.access("demand")
        cache.install_group_at_tail(["n1", "n2", "n3"])
        # Eviction order should be n3 (farthest), n2, n1, then demand.
        assert cache.victim() == "n3"

    def test_skips_resident_members(self):
        cache = LRUCache(10)
        cache.access("a")
        assert cache.install_group_at_tail(["a", "b"]) == 1
        assert "b" in cache

    def test_deduplicates_batch(self):
        cache = LRUCache(10)
        assert cache.install_group_at_tail(["x", "x", "y"]) == 2

    def test_never_displaces_mru_demand_file(self):
        cache = LRUCache(3)
        cache.access("demand")
        # Group larger than the cache: trimmed, demand file survives.
        cache.install_group_at_tail([f"n{i}" for i in range(10)])
        assert "demand" in cache
        assert len(cache) == 3

    def test_empty_batch(self):
        cache = LRUCache(2)
        assert cache.install_group_at_tail([]) == 0

    def test_counts_installs(self):
        cache = LRUCache(5)
        cache.install_group_at_tail(["a", "b"])
        assert cache.stats.installs == 2
