"""Unit tests for multi-level cache hierarchies."""

import pytest

from repro.caching.base import NullCache
from repro.caching.lru import LRUCache
from repro.caching.multilevel import MultiLevelHierarchy, TwoLevelHierarchy


class TestTwoLevel:
    def test_server_sees_only_client_misses(self):
        hierarchy = TwoLevelHierarchy(LRUCache(2), LRUCache(10))
        sequence = ["a", "b", "a", "b", "c", "a"]
        hierarchy.replay(sequence)
        # Client hits: a, b (after warm). Server requests = client misses.
        result = hierarchy.result()
        assert result.server_requests == result.client_stats.misses
        assert result.client_stats.accesses == len(sequence)

    def test_null_client_forwards_everything(self):
        hierarchy = TwoLevelHierarchy(None, LRUCache(10))
        hierarchy.replay(["a", "b", "a"])
        assert hierarchy.server.stats.accesses == 3
        assert isinstance(hierarchy.client, NullCache)

    def test_server_hit_rate(self):
        hierarchy = TwoLevelHierarchy(LRUCache(1), LRUCache(10))
        hierarchy.replay(["a", "b", "a", "b", "a", "b"])
        result = hierarchy.result()
        # Client (capacity 1) misses every access; server warms after
        # the first a and b.
        assert result.server_requests == 6
        assert result.server_stats.hits == 4
        assert result.server_hit_rate == pytest.approx(4 / 6)

    def test_end_to_end_hit_rate(self):
        hierarchy = TwoLevelHierarchy(LRUCache(1), LRUCache(10))
        hierarchy.replay(["a", "b", "a", "b"])
        result = hierarchy.result()
        # 2 cold store fetches out of 4 accesses.
        assert result.end_to_end_hit_rate == pytest.approx(0.5)

    def test_access_returns_any_level_hit(self):
        hierarchy = TwoLevelHierarchy(LRUCache(1), LRUCache(10))
        assert hierarchy.access("a") is False
        assert hierarchy.access("a") is True  # client hit
        hierarchy.access("b")
        assert hierarchy.access("a") is False  # client miss, server hit


class TestMultiLevel:
    def test_requires_levels(self):
        with pytest.raises(ValueError):
            MultiLevelHierarchy([])

    def test_hit_level_reporting(self):
        levels = [LRUCache(1), LRUCache(2), LRUCache(4)]
        hierarchy = MultiLevelHierarchy(levels)
        assert hierarchy.access("a") == -1  # all miss
        assert hierarchy.access("a") == 0  # L0 hit
        hierarchy.access("b")
        assert hierarchy.access("a") == 1  # displaced from L0, hits L1

    def test_replay_returns_per_level_stats(self):
        hierarchy = MultiLevelHierarchy([LRUCache(1), LRUCache(2)])
        stats = hierarchy.replay(["a", "b", "a", "b"])
        assert len(stats) == 2
        assert stats[0].accesses == 4
        assert stats[1].accesses == stats[0].misses

    def test_three_levels_filter_progressively(self):
        hierarchy = MultiLevelHierarchy([LRUCache(2), LRUCache(4), LRUCache(8)])
        sequence = [f"f{i % 6}" for i in range(60)]
        stats = hierarchy.replay(sequence)
        assert stats[0].accesses >= stats[1].accesses >= stats[2].accesses
