"""Unit tests for successor lists, the tracker, and the Figure 5 evaluator."""

import pytest

from repro.core.successors import (
    LFUSuccessorList,
    LRUSuccessorList,
    OracleSuccessorList,
    SuccessorList,
    SuccessorTracker,
    evaluate_successor_misses,
    make_successor_list,
)
from repro.errors import CacheConfigurationError


class TestLRUSuccessorList:
    def test_most_recent_first(self):
        slist = LRUSuccessorList(3)
        for successor in ["b", "c", "d"]:
            slist.observe(successor)
        assert slist.predict() == ["d", "c", "b"]
        assert slist.most_likely() == "d"

    def test_reobservation_promotes(self):
        slist = LRUSuccessorList(3)
        for successor in ["b", "c", "b"]:
            slist.observe(successor)
        assert slist.predict() == ["b", "c"]

    def test_capacity_evicts_least_recent(self):
        slist = LRUSuccessorList(2)
        for successor in ["b", "c", "d"]:
            slist.observe(successor)
        assert "b" not in slist
        assert slist.predict() == ["d", "c"]

    def test_rejects_unbounded(self):
        with pytest.raises(CacheConfigurationError):
            LRUSuccessorList(0)

    def test_contains_and_len(self):
        slist = LRUSuccessorList(4)
        slist.observe("x")
        assert "x" in slist
        assert len(slist) == 1


class TestLFUSuccessorList:
    def test_most_frequent_first(self):
        slist = LFUSuccessorList(3)
        for successor in ["b", "c", "c", "d"]:
            slist.observe(successor)
        assert slist.predict()[0] == "c"
        assert slist.count_of("c") == 2

    def test_eviction_prefers_lowest_count(self):
        slist = LFUSuccessorList(2)
        for successor in ["b", "b", "c"]:
            slist.observe(successor)
        slist.observe("d")  # c (count 1) evicted, b (count 2) kept
        assert "b" in slist
        assert "c" not in slist

    def test_stale_high_count_blocks_adaptation(self):
        # The pathology the paper's Figure 5 exposes: a stale successor
        # with a high count occupies the list while fresh successors
        # churn through the low-count slot.
        slist = LFUSuccessorList(2)
        for _ in range(10):
            slist.observe("stale")
        for fresh in ["n1", "n2", "n3"]:
            slist.observe(fresh)
        assert "stale" in slist
        assert slist.predict()[0] == "stale"

    def test_tie_evicts_oldest(self):
        slist = LFUSuccessorList(2)
        slist.observe("b")
        slist.observe("c")
        slist.observe("d")
        assert "b" not in slist

    def test_rejects_unbounded(self):
        with pytest.raises(CacheConfigurationError):
            LFUSuccessorList(0)


class TestOracleSuccessorList:
    def test_never_forgets(self):
        oracle = OracleSuccessorList()
        for successor in [f"s{i}" for i in range(100)]:
            oracle.observe(successor)
        assert len(oracle) == 100
        assert "s0" in oracle

    def test_predicts_by_frequency(self):
        oracle = OracleSuccessorList()
        for successor in ["a", "b", "b"]:
            oracle.observe(successor)
        assert oracle.predict()[0] == "b"

    def test_recency_breaks_frequency_ties(self):
        oracle = OracleSuccessorList()
        oracle.observe("a")
        oracle.observe("b")
        assert oracle.predict() == ["b", "a"]


class TestMakeSuccessorList:
    def test_registry(self):
        assert isinstance(make_successor_list("lru", 4), LRUSuccessorList)
        assert isinstance(make_successor_list("lfu", 4), LFUSuccessorList)
        assert isinstance(make_successor_list("oracle", 4), OracleSuccessorList)

    def test_unknown(self):
        with pytest.raises(KeyError, match="oracle"):
            make_successor_list("magic", 4)


class TestSuccessorTracker:
    def test_observe_builds_transitions(self):
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(["a", "b", "c", "a", "b"])
        assert tracker.most_likely("a") == "b"
        assert tracker.most_likely("b") == "c"
        assert tracker.successors("c") == ["a"]

    def test_most_likely_unknown_file(self):
        tracker = SuccessorTracker()
        assert tracker.most_likely("ghost") is None
        assert tracker.successors("ghost") == []

    def test_reset_stream_breaks_pairing(self):
        tracker = SuccessorTracker()
        tracker.observe("a")
        tracker.reset_stream()
        tracker.observe("b")  # must NOT create a->b
        assert tracker.most_likely("a") is None

    def test_metadata_entries(self):
        tracker = SuccessorTracker(capacity=8)
        tracker.observe_sequence(["a", "b", "a", "c"])
        # a has {b, c}, b has {a}: 3 entries.
        assert tracker.metadata_entries() == 3

    def test_tracked_files(self):
        tracker = SuccessorTracker()
        tracker.observe_sequence(["a", "b", "c"])
        assert set(tracker.tracked_files()) == {"a", "b"}
        assert tracker.has_metadata_for("a")

    def test_probe_checks_retained_successors(self):
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(["a", "b", "c"])
        assert tracker.probe("a", "b")
        assert not tracker.probe("a", "c")
        assert not tracker.probe("ghost", "b")

    def test_would_miss_is_probe_negation(self):
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(["a", "b"])
        assert not tracker.would_miss("a", "b")
        assert tracker.would_miss("a", "z")
        assert tracker.would_miss("never-seen", "b")

    def test_probe_respects_list_eviction(self):
        tracker = SuccessorTracker(policy="lru", capacity=1)
        tracker.observe_sequence(["a", "b", "a", "c"])
        # Capacity-1 LRU list: c displaced b as a's successor.
        assert tracker.probe("a", "c")
        assert tracker.would_miss("a", "b")
        assert not tracker.has_metadata_for("c")

    def test_unknown_policy(self):
        with pytest.raises(KeyError):
            SuccessorTracker(policy="fancy")

    def test_capacity_respected_per_file(self):
        tracker = SuccessorTracker(policy="lru", capacity=2)
        tracker.observe_sequence(["a", "x", "a", "y", "a", "z"])
        assert len(tracker.successors("a")) == 2


class TestEvaluateSuccessorMisses:
    def test_first_transition_always_misses(self):
        report = evaluate_successor_misses(["a", "b"], "oracle", 1)
        assert report.opportunities == 1
        assert report.misses == 1
        assert report.miss_probability == 1.0

    def test_repeated_pattern_learned(self):
        report = evaluate_successor_misses(["a", "b"] * 10, "lru", 1)
        # Only the first a->b and first b->a are missed.
        assert report.misses == 2
        assert report.opportunities == 19

    def test_oracle_is_lower_bound(self):
        sequence = ["a", "b", "a", "c", "a", "b", "a", "d", "a", "b"] * 5
        oracle = evaluate_successor_misses(sequence, "oracle", 1)
        for policy in ("lru", "lfu"):
            for capacity in (1, 2, 4):
                report = evaluate_successor_misses(sequence, policy, capacity)
                assert report.misses >= oracle.misses

    def test_capacity_monotonicity_lru(self):
        sequence = ["a", "b", "a", "c", "a", "d"] * 20
        previous = None
        for capacity in (1, 2, 3, 4):
            misses = evaluate_successor_misses(sequence, "lru", capacity).misses
            if previous is not None:
                assert misses <= previous
            previous = misses

    def test_empty_and_singleton_sequences(self):
        assert evaluate_successor_misses([], "lru", 1).opportunities == 0
        assert evaluate_successor_misses(["a"], "lru", 1).opportunities == 0
        assert evaluate_successor_misses([], "lru", 1).miss_probability == 0.0

    def test_drifting_successors_favor_lru(self):
        # Phase 1 establishes a->b as very frequent; phase 2 alternates
        # two fresh successors.  A frequency-managed list of capacity 2
        # pins the stale 'b' and churns x/y through the low-count slot
        # (each evicting the other before its recheck), while a
        # recency-managed list retains both and hits — the paper's
        # Figure 5 mechanism in miniature.
        sequence = ["a", "b"] * 30 + ["a", "x", "a", "y"] * 25
        lru = evaluate_successor_misses(sequence, "lru", 2)
        lfu = evaluate_successor_misses(sequence, "lfu", 2)
        assert lru.misses < lfu.misses


class TestHybridSuccessorList:
    def test_decay_zero_behaves_like_recency(self):
        from repro.core.successors import HybridSuccessorList

        slist = HybridSuccessorList(3, decay=0.0)
        for successor in ["b", "b", "b", "c"]:
            slist.observe(successor)
        # With total decay only the latest observation carries weight.
        assert slist.predict()[0] == "c"

    def test_high_decay_behaves_like_frequency(self):
        from repro.core.successors import HybridSuccessorList

        slist = HybridSuccessorList(3, decay=0.99)
        for successor in ["b"] * 10 + ["c"]:
            slist.observe(successor)
        assert slist.predict()[0] == "b"

    def test_scores_decay(self):
        from repro.core.successors import HybridSuccessorList

        slist = HybridSuccessorList(3, decay=0.5)
        slist.observe("b")
        score_before = slist.score_of("b")
        slist.observe("c")
        assert slist.score_of("b") == pytest.approx(score_before * 0.5)

    def test_eviction_removes_lowest_score(self):
        from repro.core.successors import HybridSuccessorList

        slist = HybridSuccessorList(2, decay=0.8)
        for successor in ["b", "b", "c"]:
            slist.observe(successor)
        slist.observe("d")  # c has the lowest decayed score
        assert "c" not in slist
        assert "b" in slist

    def test_bounded(self):
        from repro.core.successors import HybridSuccessorList

        slist = HybridSuccessorList(3)
        for i in range(20):
            slist.observe(f"s{i}")
        assert len(slist) == 3

    def test_rejects_bad_parameters(self):
        from repro.core.successors import HybridSuccessorList

        with pytest.raises(CacheConfigurationError):
            HybridSuccessorList(0)
        with pytest.raises(CacheConfigurationError):
            HybridSuccessorList(3, decay=1.0)
        with pytest.raises(CacheConfigurationError):
            HybridSuccessorList(3, decay=-0.1)

    def test_registered(self):
        assert isinstance(make_successor_list("hybrid", 4), SuccessorList)

    def test_usable_in_tracker_and_evaluation(self):
        tracker = SuccessorTracker(policy="hybrid", capacity=4)
        tracker.observe_sequence(["a", "b", "a", "b", "a", "c"])
        assert tracker.most_likely("a") in ("b", "c")
        report = evaluate_successor_misses(["a", "b"] * 20, "hybrid", 2)
        assert report.miss_probability < 0.2
