"""Unit tests for the trace text format reader and writer."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.traces.events import EventKind, Trace, TraceEvent
from repro.traces.reader import (
    FORMAT_VERSION,
    iter_events,
    parse_event_line,
    read_file_ids,
    read_trace,
)
from repro.traces.writer import format_event, write_trace


class TestParseEventLine:
    def test_minimal(self):
        event = parse_event_line("open /usr/bin/vi")
        assert event.file_id == "/usr/bin/vi"
        assert event.kind is EventKind.OPEN

    def test_attributes(self):
        event = parse_event_line("write data.db client=c1 user=alice process=p7")
        assert event.kind is EventKind.WRITE
        assert event.client_id == "c1"
        assert event.user_id == "alice"
        assert event.process_id == "p7"

    def test_rejects_short_line(self):
        with pytest.raises(TraceFormatError, match="at least"):
            parse_event_line("open")

    def test_rejects_unknown_kind(self):
        with pytest.raises(TraceFormatError, match="unknown event kind"):
            parse_event_line("frobnicate x")

    def test_rejects_unknown_attribute(self):
        with pytest.raises(TraceFormatError, match="unknown event attribute"):
            parse_event_line("open x flavor=vanilla")

    def test_rejects_empty_attribute_value(self):
        with pytest.raises(TraceFormatError):
            parse_event_line("open x client=")

    def test_error_carries_line_number(self):
        with pytest.raises(TraceFormatError) as excinfo:
            parse_event_line("bogus x", line_number=17)
        assert excinfo.value.line_number == 17
        assert "line 17" in str(excinfo.value)


class TestIterEvents:
    def test_skips_comments_and_blanks(self):
        stream = io.StringIO("# comment\n\nopen a\n  \nopen b\n")
        assert [e.file_id for e in iter_events(stream)] == ["a", "b"]

    def test_accepts_current_version(self):
        stream = io.StringIO(f"#! repro-trace {FORMAT_VERSION}\nopen a\n")
        assert len(list(iter_events(stream))) == 1

    def test_rejects_future_version(self):
        stream = io.StringIO(f"#! repro-trace {FORMAT_VERSION + 1}\nopen a\n")
        with pytest.raises(TraceFormatError, match="newer than supported"):
            list(iter_events(stream))

    def test_rejects_unknown_directive(self):
        stream = io.StringIO("#! quantum 3\n")
        with pytest.raises(TraceFormatError, match="unknown directive"):
            list(iter_events(stream))

    def test_rejects_empty_directive(self):
        stream = io.StringIO("#!\n")
        with pytest.raises(TraceFormatError, match="empty"):
            list(iter_events(stream))

    def test_rejects_nonnumeric_version(self):
        stream = io.StringIO("#! repro-trace one\n")
        with pytest.raises(TraceFormatError, match="numeric version"):
            list(iter_events(stream))


class TestRoundTrip:
    def test_memory_round_trip(self, mixed_trace):
        buffer = io.StringIO()
        write_trace(mixed_trace, buffer)
        recovered = read_trace(io.StringIO(buffer.getvalue()))
        assert recovered.name == mixed_trace.name
        assert len(recovered) == len(mixed_trace)
        for original, parsed in zip(mixed_trace, recovered):
            assert parsed.file_id == original.file_id
            assert parsed.kind == original.kind
            assert parsed.client_id == original.client_id
            assert parsed.user_id == original.user_id
            assert parsed.process_id == original.process_id

    def test_file_round_trip(self, tmp_path, mixed_trace):
        path = tmp_path / "trace.txt"
        write_trace(mixed_trace, path)
        recovered = read_trace(path)
        assert recovered.file_ids() == mixed_trace.file_ids()
        assert recovered.name == "mixed"

    def test_name_falls_back_to_stem(self, tmp_path):
        path = tmp_path / "mytrace.txt"
        path.write_text("open a\n", encoding="utf-8")
        assert read_trace(path).name == "mytrace"

    def test_explicit_name_overrides(self, tmp_path, mixed_trace):
        path = tmp_path / "whatever.txt"
        write_trace(mixed_trace, path)
        assert read_trace(path, name="override").name == "override"

    def test_read_file_ids(self, tmp_path):
        path = tmp_path / "t.txt"
        write_trace(Trace.from_file_ids(["x", "y", "x"]), path)
        assert list(read_file_ids(path)) == ["x", "y", "x"]


class TestFormatEvent:
    def test_plain(self):
        assert format_event(TraceEvent("a")) == "open a"

    def test_full(self):
        event = TraceEvent(
            "a", EventKind.CREATE, client_id="c", user_id="u", process_id="p"
        )
        assert format_event(event) == "create a client=c user=u process=p"


class TestGzipSupport:
    def test_gzip_round_trip(self, tmp_path, mixed_trace):
        path = tmp_path / "trace.txt.gz"
        write_trace(mixed_trace, path)
        recovered = read_trace(path)
        assert recovered.file_ids() == mixed_trace.file_ids()
        # The .txt.gz double suffix strips to the bare stem.
        assert recovered.name == "mixed"

    def test_gzip_actually_compressed(self, tmp_path):
        trace = Trace.from_file_ids(["same/file"] * 2000)
        plain = tmp_path / "t.trace"
        packed = tmp_path / "t.trace.gz"
        write_trace(trace, plain)
        write_trace(trace, packed)
        assert packed.stat().st_size < plain.stat().st_size / 5

    def test_gzip_name_from_stem(self, tmp_path):
        import gzip

        path = tmp_path / "mytrace.trace.gz"
        with gzip.open(path, "wt", encoding="utf-8") as stream:
            stream.write("open a\n")
        assert read_trace(path).name == "mytrace"
