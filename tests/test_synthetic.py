"""Unit tests for the synthetic paper workloads (structure, not shape).

Shape/calibration assertions live in test_workload_calibration.py; this
module tests the generator machinery itself: determinism, validation,
event accounting, and the spec registry.
"""

import pytest

from repro.errors import WorkloadError
from repro.traces.events import EventKind
from repro.workloads.markov import (
    MarkovTraceGenerator,
    cycle_with_noise,
    validate_transitions,
)
from repro.workloads.synthetic import (
    SERVER_SPEC,
    WORKLOADS,
    WRITE_SPEC,
    WorkloadSpec,
    build_workload,
    make_workload,
)


class TestWorkloadSpec:
    def test_presets_validate(self):
        for spec in (SERVER_SPEC, WRITE_SPEC):
            spec.validate()

    def test_rejects_bad_clients(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="x", clients=0).validate()

    def test_rejects_bad_fractions(self):
        with pytest.raises(WorkloadError, match="noise_probability"):
            WorkloadSpec(name="x", noise_probability=2.0).validate()

    def test_rejects_short_chain(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="x", chain_length=1).validate()

    def test_rejects_bad_repeat_mean(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="x", repeat_mean=0.5).validate()


class TestBuildWorkload:
    def test_exact_event_count(self):
        for name in WORKLOADS:
            trace = make_workload(name, 2000)
            assert len(trace) == 2000, name

    def test_deterministic_for_seed(self):
        a = make_workload("server", 3000, seed=7).file_ids()
        b = make_workload("server", 3000, seed=7).file_ids()
        assert a == b

    def test_different_seeds_differ(self):
        a = make_workload("server", 3000, seed=1).file_ids()
        b = make_workload("server", 3000, seed=2).file_ids()
        assert a != b

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError, match="server"):
            make_workload("mainframe", 100)

    def test_zero_events(self):
        assert len(make_workload("users", 0)) == 0

    def test_negative_events_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload(SERVER_SPEC, -5, seed=1)

    def test_client_attribution(self):
        trace = make_workload("users", 3000)
        clients = {event.client_id for event in trace}
        assert len(clients) == 12

    def test_write_workload_has_mutations(self):
        trace = make_workload("write", 5000)
        mutations = sum(1 for event in trace if event.is_mutation)
        assert mutations > 0.15 * len(trace)

    def test_server_workload_mostly_opens(self):
        trace = make_workload("server", 5000)
        opens = sum(1 for event in trace if event.kind is EventKind.OPEN)
        assert opens > 0.85 * len(trace)

    def test_repeats_present(self):
        trace = make_workload("server", 5000)
        ids = trace.file_ids()
        immediate_repeats = sum(1 for a, b in zip(ids, ids[1:]) if a == b)
        assert immediate_repeats > 0.02 * len(ids)

    def test_shared_utilities_appear(self):
        trace = make_workload("workstation", 10000)
        files = set(trace.file_ids())
        assert "bin/sh" in files or "bin/make" in files

    def test_library_files_span_activities(self):
        trace = make_workload("users", 20000)
        # Some lib file must be accessed as part of multiple activities;
        # proxy: lib files exist and are hot.
        lib_accesses = [f for f in trace.file_ids() if "/lib/" in f]
        assert len(lib_accesses) > 100


class TestMarkovGenerator:
    def test_validate_rejects_bad_rows(self):
        with pytest.raises(WorkloadError, match="sum"):
            validate_transitions({"a": {"a": 0.5}})
        with pytest.raises(WorkloadError, match="unknown states"):
            validate_transitions({"a": {"b": 1.0}})
        with pytest.raises(WorkloadError, match="empty"):
            validate_transitions({})
        with pytest.raises(WorkloadError, match="no successors"):
            validate_transitions({"a": {}})

    def test_generation_walks_table(self):
        table = {"a": {"b": 1.0}, "b": {"a": 1.0}}
        trace = MarkovTraceGenerator(table).generate(10, seed=1)
        assert trace.file_ids() == ["a", "b"] * 5

    def test_initial_state(self):
        table = {"a": {"b": 1.0}, "b": {"a": 1.0}}
        trace = MarkovTraceGenerator(table, initial="b").generate(3, seed=1)
        assert trace.file_ids()[0] == "b"

    def test_bad_initial_rejected(self):
        table = {"a": {"a": 1.0}}
        with pytest.raises(WorkloadError):
            MarkovTraceGenerator(table, initial="z")

    def test_deterministic(self):
        table = cycle_with_noise([f"f{i}" for i in range(5)], 0.5)
        gen = MarkovTraceGenerator(table)
        assert gen.generate(100, seed=3).file_ids() == gen.generate(
            100, seed=3
        ).file_ids()

    def test_negative_events(self):
        table = {"a": {"a": 1.0}}
        with pytest.raises(WorkloadError):
            MarkovTraceGenerator(table).generate(-1)


class TestCycleWithNoise:
    def test_valid_table(self):
        table = cycle_with_noise([f"f{i}" for i in range(6)], 0.8)
        validate_transitions(table)

    def test_full_fidelity_is_deterministic_cycle(self):
        table = cycle_with_noise(["a", "b", "c"], 1.0)
        assert table["a"] == {"b": 1.0, "c": 0.0} or table["a"]["b"] == 1.0

    def test_two_state(self):
        table = cycle_with_noise(["a", "b"], 0.5)
        assert table["a"] == {"b": 1.0}

    def test_rejects_bad_args(self):
        with pytest.raises(WorkloadError):
            cycle_with_noise(["a"], 0.5)
        with pytest.raises(WorkloadError):
            cycle_with_noise(["a", "b"], 1.5)

    def test_fidelity_monotone_in_entropy(self):
        from repro.core.entropy import successor_entropy

        files = [f"f{i}" for i in range(8)]
        entropies = []
        for fidelity in (1.0, 0.8, 0.5):
            trace = MarkovTraceGenerator(cycle_with_noise(files, fidelity)).generate(
                4000, seed=5
            )
            entropies.append(successor_entropy(trace.file_ids()))
        assert entropies[0] < entropies[1] < entropies[2]


class TestCatalog:
    def test_all_workloads_cataloged(self):
        from repro.workloads.catalog import CATALOG
        from repro.workloads.synthetic import WORKLOADS

        assert set(CATALOG) == set(WORKLOADS)

    def test_profiles_reference_real_specs(self):
        from repro.workloads.catalog import CATALOG

        for name, profile in CATALOG.items():
            assert profile.spec is not None
            assert profile.spec.name == name
            assert profile.stands_in_for
            assert profile.dominant_mechanisms
            assert profile.calibration_targets

    def test_describe_workload(self):
        from repro.workloads.catalog import describe_workload

        assert describe_workload("server").name == "server"
        with pytest.raises(WorkloadError, match="server"):
            describe_workload("cray")

    def test_catalog_rows_shape(self):
        from repro.workloads.catalog import catalog_rows

        rows = catalog_rows()
        assert rows[0] == ["workload", "stands in for", "character"]
        assert len(rows) == 5
