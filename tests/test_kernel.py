"""Equivalence tests for the columnar batch replay kernel.

The contract mirrors ``test_fast_replay.py`` one rung down: replaying a
:class:`ColumnarTrace` through the engine must produce metrics
byte-identical to the generic per-event path — on all four paper
workloads, with and without numpy, across qualifying and
non-qualifying configurations.
"""

import pytest

import repro.sim.kernel as kernel
from repro.sim.engine import DistributedFileSystem
from repro.sim.kernel import client_runs, scan_columns
from repro.traces.columnar import ColumnarTrace
from repro.traces.events import Trace
from repro.workloads.synthetic import make_workload

WORKLOADS = ("server", "users", "write", "workstation")
EVENTS = 4000
CONFIG = dict(client_capacity=250, server_capacity=300, group_size=5)

NUMPY_MODES = (False, True) if kernel.HAVE_NUMPY else (False,)


@pytest.fixture(params=NUMPY_MODES, ids=lambda v: "numpy" if v else "pure")
def numpy_mode(request, monkeypatch):
    """Run the test body under both kernel implementations."""
    monkeypatch.setattr(kernel, "HAVE_NUMPY", request.param)
    return request.param


def generic_engine_metrics(system, trace):
    """Reference replay: per-event access() calls, no fast loop."""
    for event in trace:
        client = event.client_id or "client00"
        system.access(client, event.file_id)
    return system.metrics()


class TestScanColumns:
    def test_counts_match_trace(self, numpy_mode):
        trace = make_workload("write", EVENTS)
        ctrace = ColumnarTrace.from_trace(trace)
        scan = scan_columns(
            ctrace.file_codes, ctrace.kind_codes, len(ctrace.file_symbols)
        )
        assert scan.events == EVENTS
        assert scan.unique_files == trace.unique_files()
        assert sum(scan.kind_counts) == EVENTS
        assert scan.open_events == sum(
            1 for event in trace if event.is_open
        )
        assert scan.mutation_events == sum(
            1 for event in trace if event.is_mutation
        )

    def test_no_kind_column_is_all_opens(self, numpy_mode):
        ctrace = ColumnarTrace.from_trace(
            Trace.from_file_ids(["a", "b", "a", "c"])
        )
        scan = scan_columns(ctrace.file_codes, ctrace.kind_codes)
        assert scan.kind_counts == (4, 0, 0, 0, 0, 0)
        assert scan.unique_files == 3

    def test_empty_columns(self, numpy_mode):
        scan = scan_columns([], None)
        assert scan.events == 0 and scan.unique_files == 0

    @pytest.mark.skipif(not kernel.HAVE_NUMPY, reason="needs numpy")
    def test_numpy_and_fallback_identical(self, monkeypatch):
        ctrace = ColumnarTrace.from_trace(make_workload("users", EVENTS))
        fast = scan_columns(
            ctrace.file_codes, ctrace.kind_codes, len(ctrace.file_symbols)
        )
        monkeypatch.setattr(kernel, "HAVE_NUMPY", False)
        slow = scan_columns(
            ctrace.file_codes, ctrace.kind_codes, len(ctrace.file_symbols)
        )
        assert fast == slow


class TestClientRuns:
    def test_segments_cover_and_label(self, numpy_mode):
        trace = make_workload("write", EVENTS)  # two clients
        ctrace = ColumnarTrace.from_trace(trace)
        runs = client_runs(ctrace)
        assert runs[0][1] == 0 and runs[-1][2] == EVENTS
        flattened = []
        for client, lo, hi in runs:
            assert lo < hi
            flattened.extend([client] * (hi - lo))
        assert flattened == [
            event.client_id or "client00" for event in trace
        ]

    def test_constant_client_single_run(self, numpy_mode):
        ctrace = ColumnarTrace.from_trace(make_workload("server", 500))
        assert len(client_runs(ctrace)) == 1

    def test_unattributed_events_default_client(self, numpy_mode):
        ctrace = ColumnarTrace.from_trace(Trace.from_file_ids(["a", "b"]))
        assert client_runs(ctrace) == [("client00", 0, 2)]

    def test_empty_trace_no_runs(self, numpy_mode):
        assert client_runs(ColumnarTrace.from_trace(Trace())) == []


class TestKernelReplay:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_matches_generic_path(self, workload, numpy_mode):
        trace = make_workload(workload, EVENTS)
        ctrace = ColumnarTrace.from_trace(trace)
        reference = generic_engine_metrics(
            DistributedFileSystem(**CONFIG), trace
        )
        system = DistributedFileSystem(**CONFIG)
        assert system._fast_replay_ok()
        assert system.replay(ctrace) == reference

    def test_no_server_and_uncooperative_configs(self, numpy_mode):
        ctrace = ColumnarTrace.from_trace(make_workload("write", EVENTS))
        trace = ctrace.to_trace()
        for config in (
            dict(client_capacity=200, server_capacity=0, group_size=5),
            dict(client_capacity=200, server_capacity=150, group_size=3,
                 cooperative=False),
            dict(client_capacity=200, server_capacity=0, group_size=1,
                 cooperative=False),
        ):
            reference = generic_engine_metrics(
                DistributedFileSystem(**config), trace
            )
            assert (
                DistributedFileSystem(**config).replay(ctrace) == reference
            ), config

    def test_non_qualifying_config_falls_back(self, numpy_mode):
        # Hybrid successor lists are outside the kernel's contract; the
        # columnar trace must be decoded and replayed generically.
        ctrace = ColumnarTrace.from_trace(make_workload("server", EVENTS))
        system = DistributedFileSystem(
            client_capacity=100, successor_policy="hybrid"
        )
        assert not system._fast_replay_ok()
        metrics = system.replay(ctrace)
        assert metrics.total_client_accesses == EVENTS

    def test_repeated_replay_carries_previous(self, numpy_mode):
        # Two consecutive replays must chain successor state exactly as
        # the string-keyed event path does: tracker._previous crosses
        # the boundary and links the last file to the next replay's
        # first.  (intern=True is the one path that differs here — its
        # fresh per-replay symbol table maps the carried key to an
        # unused code, a long-documented caveat.)
        ctrace = ColumnarTrace.from_trace(make_workload("server", EVENTS))
        trace = ctrace.to_trace()
        reference = DistributedFileSystem(**CONFIG)
        reference.replay(trace)
        reference.replay(trace)
        system = DistributedFileSystem(**CONFIG)
        system.replay(ctrace)
        assert system.replay(ctrace) == reference.metrics()


class TestWindowedColumnarReplay:
    def test_samples_identical_to_event_path(self, numpy_mode):
        from repro.obs.timeseries import WindowedCollector, windowed_replay

        ctrace = ColumnarTrace.from_trace(make_workload("write", EVENTS))
        trace = ctrace.to_trace()
        events_collector = WindowedCollector(window=500)
        columnar_collector = WindowedCollector(window=500)
        event_metrics = windowed_replay(
            DistributedFileSystem(**CONFIG), trace,
            collector=events_collector,
        )
        columnar_metrics = windowed_replay(
            DistributedFileSystem(**CONFIG), ctrace,
            collector=columnar_collector,
        )
        assert columnar_metrics == event_metrics
        assert [
            sample.deterministic_dict() for sample in columnar_collector.samples
        ] == [
            sample.deterministic_dict() for sample in events_collector.samples
        ]


class TestKernelObservability:
    def test_counters_match_fast_loop(self, numpy_mode):
        from repro.obs import collecting

        ctrace = ColumnarTrace.from_trace(make_workload("write", EVENTS))
        trace = ctrace.to_trace()
        with collecting() as fast_registry:
            DistributedFileSystem(**CONFIG).replay(trace, intern=True)
        with collecting() as kernel_registry:
            DistributedFileSystem(**CONFIG).replay(ctrace)
        fast = fast_registry.snapshot()
        batch = kernel_registry.snapshot()
        for name in (
            "engine.client.hits",
            "engine.client.misses",
            "engine.server.hits",
            "engine.server.misses",
            "engine.store.fetches",
            "engine.remote_requests",
            "successors.transitions",
            "cache.lru.hits",
            "cache.lru.misses",
            "cache.lru.evictions",
            "cache.lru.installs",
        ):
            assert batch["counters"][name] == fast["counters"][name], name
        assert "engine.replay.kernel.ns" in batch["histograms"]
