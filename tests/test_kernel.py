"""Equivalence tests for the columnar batch replay kernel.

The contract mirrors ``test_fast_replay.py`` one rung down: replaying a
:class:`ColumnarTrace` through the engine must produce metrics
byte-identical to the generic per-event path — on all four paper
workloads, with and without numpy, across qualifying and
non-qualifying configurations.
"""

import pytest

import repro.caching.array_lru as array_lru
import repro.sim.kernel as kernel
from repro.sim.engine import DistributedFileSystem
from repro.sim.kernel import client_runs, scan_columns
from repro.traces.columnar import ColumnarTrace
from repro.traces.events import Trace
from repro.workloads.synthetic import make_workload

WORKLOADS = ("server", "users", "write", "workstation")
EVENTS = 4000
CONFIG = dict(client_capacity=250, server_capacity=300, group_size=5)

NUMPY_MODES = (False, True) if kernel.HAVE_NUMPY else (False,)


@pytest.fixture(params=NUMPY_MODES, ids=lambda v: "numpy" if v else "pure")
def numpy_mode(request, monkeypatch):
    """Run the test body under both kernel implementations.

    The array eviction core keeps its own module flag for the queue
    refill / export scans, so both must be forced together for the
    "pure" leg to actually avoid numpy.
    """
    monkeypatch.setattr(kernel, "HAVE_NUMPY", request.param)
    monkeypatch.setattr(array_lru, "HAVE_NUMPY", request.param)
    return request.param


def generic_engine_metrics(system, trace):
    """Reference replay: per-event access() calls, no fast loop."""
    for event in trace:
        client = event.client_id or "client00"
        system.access(client, event.file_id)
    return system.metrics()


class TestScanColumns:
    def test_counts_match_trace(self, numpy_mode):
        trace = make_workload("write", EVENTS)
        ctrace = ColumnarTrace.from_trace(trace)
        scan = scan_columns(
            ctrace.file_codes, ctrace.kind_codes, len(ctrace.file_symbols)
        )
        assert scan.events == EVENTS
        assert scan.unique_files == trace.unique_files()
        assert sum(scan.kind_counts) == EVENTS
        assert scan.open_events == sum(
            1 for event in trace if event.is_open
        )
        assert scan.mutation_events == sum(
            1 for event in trace if event.is_mutation
        )

    def test_no_kind_column_is_all_opens(self, numpy_mode):
        ctrace = ColumnarTrace.from_trace(
            Trace.from_file_ids(["a", "b", "a", "c"])
        )
        scan = scan_columns(ctrace.file_codes, ctrace.kind_codes)
        assert scan.kind_counts == (4, 0, 0, 0, 0, 0)
        assert scan.unique_files == 3

    def test_empty_columns(self, numpy_mode):
        scan = scan_columns([], None)
        assert scan.events == 0 and scan.unique_files == 0

    @pytest.mark.skipif(not kernel.HAVE_NUMPY, reason="needs numpy")
    def test_numpy_and_fallback_identical(self, monkeypatch):
        ctrace = ColumnarTrace.from_trace(make_workload("users", EVENTS))
        fast = scan_columns(
            ctrace.file_codes, ctrace.kind_codes, len(ctrace.file_symbols)
        )
        monkeypatch.setattr(kernel, "HAVE_NUMPY", False)
        slow = scan_columns(
            ctrace.file_codes, ctrace.kind_codes, len(ctrace.file_symbols)
        )
        assert fast == slow


class TestClientRuns:
    def test_segments_cover_and_label(self, numpy_mode):
        trace = make_workload("write", EVENTS)  # two clients
        ctrace = ColumnarTrace.from_trace(trace)
        runs = client_runs(ctrace)
        assert runs[0][1] == 0 and runs[-1][2] == EVENTS
        flattened = []
        for client, lo, hi in runs:
            assert lo < hi
            flattened.extend([client] * (hi - lo))
        assert flattened == [
            event.client_id or "client00" for event in trace
        ]

    def test_constant_client_single_run(self, numpy_mode):
        ctrace = ColumnarTrace.from_trace(make_workload("server", 500))
        assert len(client_runs(ctrace)) == 1

    def test_unattributed_events_default_client(self, numpy_mode):
        ctrace = ColumnarTrace.from_trace(Trace.from_file_ids(["a", "b"]))
        assert client_runs(ctrace) == [("client00", 0, 2)]

    def test_empty_trace_no_runs(self, numpy_mode):
        assert client_runs(ColumnarTrace.from_trace(Trace())) == []


class TestKernelReplay:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_matches_generic_path(self, workload, numpy_mode):
        trace = make_workload(workload, EVENTS)
        ctrace = ColumnarTrace.from_trace(trace)
        reference = generic_engine_metrics(
            DistributedFileSystem(**CONFIG), trace
        )
        system = DistributedFileSystem(**CONFIG)
        assert system._fast_replay_ok()
        assert system.replay(ctrace) == reference

    def test_no_server_and_uncooperative_configs(self, numpy_mode):
        ctrace = ColumnarTrace.from_trace(make_workload("write", EVENTS))
        trace = ctrace.to_trace()
        for config in (
            dict(client_capacity=200, server_capacity=0, group_size=5),
            dict(client_capacity=200, server_capacity=150, group_size=3,
                 cooperative=False),
            dict(client_capacity=200, server_capacity=0, group_size=1,
                 cooperative=False),
        ):
            reference = generic_engine_metrics(
                DistributedFileSystem(**config), trace
            )
            assert (
                DistributedFileSystem(**config).replay(ctrace) == reference
            ), config

    def test_non_qualifying_config_falls_back(self, numpy_mode):
        # Hybrid successor lists are outside the kernel's contract; the
        # columnar trace must be decoded and replayed generically.
        ctrace = ColumnarTrace.from_trace(make_workload("server", EVENTS))
        system = DistributedFileSystem(
            client_capacity=100, successor_policy="hybrid"
        )
        assert not system._fast_replay_ok()
        metrics = system.replay(ctrace)
        assert metrics.total_client_accesses == EVENTS

    def test_repeated_replay_carries_previous(self, numpy_mode):
        # Two consecutive replays must chain successor state exactly as
        # the string-keyed event path does: tracker._previous crosses
        # the boundary and links the last file to the next replay's
        # first.  (intern=True is the one path that differs here — its
        # fresh per-replay symbol table maps the carried key to an
        # unused code, a long-documented caveat.)
        ctrace = ColumnarTrace.from_trace(make_workload("server", EVENTS))
        trace = ctrace.to_trace()
        reference = DistributedFileSystem(**CONFIG)
        reference.replay(trace)
        reference.replay(trace)
        system = DistributedFileSystem(**CONFIG)
        system.replay(ctrace)
        assert system.replay(ctrace) == reference.metrics()


class TestWindowedColumnarReplay:
    def test_samples_identical_to_event_path(self, numpy_mode):
        from repro.obs.timeseries import WindowedCollector, windowed_replay

        ctrace = ColumnarTrace.from_trace(make_workload("write", EVENTS))
        trace = ctrace.to_trace()
        events_collector = WindowedCollector(window=500)
        columnar_collector = WindowedCollector(window=500)
        event_metrics = windowed_replay(
            DistributedFileSystem(**CONFIG), trace,
            collector=events_collector,
        )
        columnar_metrics = windowed_replay(
            DistributedFileSystem(**CONFIG), ctrace,
            collector=columnar_collector,
        )
        assert columnar_metrics == event_metrics
        assert [
            sample.deterministic_dict() for sample in columnar_collector.samples
        ] == [
            sample.deterministic_dict() for sample in events_collector.samples
        ]


class TestArrayKernelDispatch:
    """The engine's columnar dispatch: array kernel when eligible,
    explicit fallback to the dict kernel otherwise, with the chosen
    path recorded in ``engine.replay.path.*``."""

    @staticmethod
    def _path_counters(registry):
        return {
            name: value
            for name, value in registry.snapshot()["counters"].items()
            if name.startswith("engine.replay.path.")
        }

    def test_eligible_replay_takes_array_kernel(self, numpy_mode):
        from repro.obs import collecting

        ctrace = ColumnarTrace.from_trace(make_workload("server", EVENTS))
        with collecting() as registry:
            DistributedFileSystem(**CONFIG).replay(ctrace)
        assert self._path_counters(registry) == {
            "engine.replay.path.kernel_v2": 1
        }

    def test_small_trace_falls_back_to_dict_kernel(self, numpy_mode):
        from repro.obs import collecting

        small = ColumnarTrace.from_trace(make_workload("server", 512))
        assert len(small) < kernel.V2_MIN_EVENTS
        with collecting() as registry:
            DistributedFileSystem(**CONFIG).replay(small)
        assert self._path_counters(registry) == {"engine.replay.path.kernel": 1}

    def test_floor_override_admits_small_traces(self, numpy_mode, monkeypatch):
        from repro.obs import collecting

        monkeypatch.setattr(kernel, "V2_MIN_EVENTS", 0)
        trace = make_workload("server", 512)
        small = ColumnarTrace.from_trace(trace)
        reference = generic_engine_metrics(
            DistributedFileSystem(**CONFIG), trace
        )
        with collecting() as registry:
            metrics = DistributedFileSystem(**CONFIG).replay(small)
        assert metrics == reference
        assert self._path_counters(registry) == {
            "engine.replay.path.kernel_v2": 1
        }

    def test_evict_listener_falls_back_to_dict_kernel(self, numpy_mode):
        from repro.obs import collecting

        ctrace = ColumnarTrace.from_trace(make_workload("server", EVENTS))
        system = DistributedFileSystem(**CONFIG)
        victims = []
        system.server_cache.evict_listener = victims.append
        with collecting() as registry:
            system.replay(ctrace)
        assert self._path_counters(registry) == {"engine.replay.path.kernel": 1}
        assert victims  # the dict kernel still fires the hook

    def test_string_keyed_state_falls_back_to_dict_kernel(self, numpy_mode):
        from repro.obs import collecting

        ctrace = ColumnarTrace.from_trace(make_workload("server", EVENTS))
        trace = ctrace.to_trace()
        system = DistributedFileSystem(**CONFIG)
        system.replay(trace, intern=False)  # warm state keyed by strings
        with collecting() as registry:
            system.replay(ctrace)
        assert self._path_counters(registry) == {"engine.replay.path.kernel": 1}
        # The dict kernel's documented contract on warm string state is
        # intern=True semantics: string keys are foreign to the code
        # space, exactly like the interning fast path.
        reference = DistributedFileSystem(**CONFIG)
        reference.replay(trace, intern=False)
        reference.replay(trace, intern=True)
        assert system.metrics() == reference.metrics()

    @staticmethod
    def _full_state(system):
        return (
            {cid: list(cache._order) for cid, cache in system.clients.items()},
            list(system.server_cache._order)
            if system.server_cache is not None
            else None,
            {
                key: list(slist._items)
                for key, slist in system.tracker._lists.items()
            },
            system.tracker._previous,
        )

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_final_state_identical_to_dict_kernel(self, workload, numpy_mode,
                                                  monkeypatch):
        # Beyond metrics equality: the exported cache orders, successor
        # lists, and carried previous must match the dict kernel's.
        ctrace = ColumnarTrace.from_trace(make_workload(workload, EVENTS))
        array_system = DistributedFileSystem(**CONFIG)
        array_metrics = array_system.replay(ctrace)
        monkeypatch.setattr(kernel, "V2_MIN_EVENTS", EVENTS + 1)
        dict_system = DistributedFileSystem(**CONFIG)
        dict_metrics = dict_system.replay(ctrace)
        assert array_metrics == dict_metrics
        assert self._full_state(array_system) == self._full_state(dict_system)

    def test_windowed_replay_reuses_one_session(self, numpy_mode):
        # The windowed driver imports array state once and replays every
        # chunk through it — one kernel_v2 record per window, and totals
        # identical to the unwindowed replay.
        from repro.obs import collecting
        from repro.obs.timeseries import WindowedCollector, windowed_replay

        ctrace = ColumnarTrace.from_trace(make_workload("write", EVENTS))
        with collecting() as registry:
            metrics = windowed_replay(
                DistributedFileSystem(**CONFIG), ctrace,
                collector=WindowedCollector(window=500),
            )
        assert metrics == DistributedFileSystem(**CONFIG).replay(ctrace)
        assert self._path_counters(registry) == {
            "engine.replay.path.kernel_v2": EVENTS // 500
        }


class TestKernelObservability:
    def test_counters_match_fast_loop(self, numpy_mode):
        from repro.obs import collecting

        ctrace = ColumnarTrace.from_trace(make_workload("write", EVENTS))
        trace = ctrace.to_trace()
        with collecting() as fast_registry:
            DistributedFileSystem(**CONFIG).replay(trace, intern=True)
        with collecting() as kernel_registry:
            DistributedFileSystem(**CONFIG).replay(ctrace)
        fast = fast_registry.snapshot()
        batch = kernel_registry.snapshot()
        for name in (
            "engine.client.hits",
            "engine.client.misses",
            "engine.server.hits",
            "engine.server.misses",
            "engine.store.fetches",
            "engine.remote_requests",
            "successors.transitions",
            "cache.lru.hits",
            "cache.lru.misses",
            "cache.lru.evictions",
            "cache.lru.installs",
        ):
            assert batch["counters"][name] == fast["counters"][name], name
        assert "engine.replay.kernel.ns" in batch["histograms"]
