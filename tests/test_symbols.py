"""Unit tests for the symbol-interning table."""

import pytest

from repro.caching.lfu import LFUCache
from repro.caching.lru import LRUCache
from repro.sim.engine import replay_cache
from repro.traces.symbols import SymbolTable, intern_sequence


class TestSymbolTable:
    def test_codes_are_dense_and_first_appearance_ordered(self):
        table = SymbolTable()
        assert table.intern("b") == 0
        assert table.intern("a") == 1
        assert table.intern("b") == 0
        assert len(table) == 2

    def test_encode_round_trips(self):
        table = SymbolTable()
        sequence = ["x", "y", "x", "z", "y"]
        codes = table.encode(sequence)
        assert codes == [0, 1, 0, 2, 1]
        assert table.decode_sequence(codes) == sequence

    def test_decode_single(self):
        table = SymbolTable()
        table.intern("only")
        assert table.decode(0) == "only"
        with pytest.raises(IndexError):
            table.decode(5)

    def test_code_of_requires_prior_intern(self):
        table = SymbolTable()
        table.intern("seen")
        assert table.code_of("seen") == 0
        with pytest.raises(KeyError):
            table.code_of("never")

    def test_contains(self):
        table = SymbolTable()
        table.intern("here")
        assert "here" in table
        assert "gone" not in table

    def test_encode_extends_existing_table(self):
        table = SymbolTable()
        table.encode(["a", "b"])
        assert table.encode(["b", "c"]) == [1, 2]
        assert len(table) == 3


class TestInternSequence:
    def test_returns_codes_and_table(self):
        codes, table = intern_sequence(["f1", "f2", "f1"])
        assert codes == [0, 1, 0]
        assert table.decode_sequence(codes) == ["f1", "f2", "f1"]

    def test_empty_sequence(self):
        codes, table = intern_sequence([])
        assert codes == []
        assert len(table) == 0


class TestKeyAgnosticism:
    """Interned replays must count exactly like string replays."""

    @pytest.mark.parametrize("cache_cls", [LRUCache, LFUCache])
    def test_cache_stats_identical_under_interning(self, cache_cls):
        sequence = [f"f{i % 7}" for i in range(200)] + ["f1", "f9", "f2"]
        plain = replay_cache(cache_cls(4), sequence)
        interned = replay_cache(cache_cls(4), sequence, intern=True)
        assert interned == plain
