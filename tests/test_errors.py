"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    CacheConfigurationError,
    ExperimentError,
    ReproError,
    SimulationError,
    TraceError,
    TraceFormatError,
    WorkloadError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for error_class in (
            TraceError,
            TraceFormatError,
            WorkloadError,
            CacheConfigurationError,
            SimulationError,
            ExperimentError,
            AnalysisError,
        ):
            assert issubclass(error_class, ReproError)

    def test_trace_format_is_trace_error(self):
        assert issubclass(TraceFormatError, TraceError)

    def test_one_handler_catches_everything(self):
        with pytest.raises(ReproError):
            raise WorkloadError("bad spec")


class TestTraceFormatError:
    def test_carries_context(self):
        error = TraceFormatError("bad token", line_number=4, text="open")
        assert error.line_number == 4
        assert error.text == "open"
        assert "line 4" in str(error)

    def test_without_line_number(self):
        error = TraceFormatError("bad token")
        assert "line" not in str(error)
