"""Failure-injection and adversarial-input tests.

The aggregating cache is server infrastructure: it must stay correct
under churned metadata, hostile access patterns, concurrent
invalidation storms, and malformed trace input — not just on the happy
path the figures exercise.
"""

import random

import pytest

from repro.caching.lru import LRUCache
from repro.core.aggregating_cache import AggregatingClientCache, AggregatingServerCache
from repro.core.grouping import GroupBuilder
from repro.core.successors import SuccessorTracker
from repro.sim.engine import DistributedFileSystem
from repro.traces.events import EventKind, Trace, TraceEvent


class TestAdversarialAccessPatterns:
    def test_pathological_self_loop_stream(self):
        cache = AggregatingClientCache(capacity=4, group_size=5)
        cache.replay(["same"] * 1000)
        assert cache.stats.hits == 999
        assert len(cache) <= 4
        # The only metadata is the self-edge; groups stay singletons.
        assert cache.tracker.successors("same") == ["same"]

    def test_all_unique_stream(self):
        cache = AggregatingClientCache(capacity=50, group_size=5)
        cache.replay([f"once{i}" for i in range(2000)])
        assert cache.stats.hits == 0
        assert cache.fetch_log.predicted_installed == 0
        assert len(cache) <= 50

    def test_adversarial_cycle_equal_to_capacity_plus_one(self):
        # The classic LRU-killer: cycle one larger than the cache.
        files = [f"f{i}" for i in range(11)]
        cache = AggregatingClientCache(capacity=10, group_size=5)
        cache.replay(files * 50)
        # Grouping must rescue what LRU cannot.
        lru = LRUCache(10)
        for key in files * 50:
            lru.access(key)
        assert lru.stats.hits == 0
        assert cache.stats.hits > 100

    def test_alternating_hot_cold_phases(self):
        rng = random.Random(0)
        hot = [f"hot{i}" for i in range(5)]
        sequence = []
        for phase in range(20):
            if phase % 2 == 0:
                sequence += hot * 10
            else:
                sequence += [f"cold{phase}.{i}" for i in range(50)]
        cache = AggregatingClientCache(capacity=20, group_size=5)
        cache.replay(sequence)
        assert cache.stats.accesses == len(sequence)
        assert len(cache) <= 20

    def test_group_size_larger_than_cache(self):
        cache = AggregatingClientCache(capacity=3, group_size=10)
        chain = [f"c{i}" for i in range(8)]
        cache.replay(chain * 20)
        assert len(cache) <= 3
        # The demanded file must never be displaced by its own group.
        cache.access("c0")
        assert "c0" in cache


class TestMetadataChurn:
    def test_tracker_survives_interleaved_resets(self):
        tracker = SuccessorTracker(capacity=4)
        rng = random.Random(1)
        for i in range(1000):
            tracker.observe(f"f{rng.randrange(20)}")
            if i % 97 == 0:
                tracker.reset_stream()
        builder = GroupBuilder(tracker, 5)
        for file_id in list(tracker.tracked_files()):
            group = builder.build(file_id)
            assert len(set(group.members)) == len(group.members)

    def test_server_cache_invalidation_storm(self):
        server = AggregatingServerCache(capacity=30, group_size=5)
        rng = random.Random(2)
        for i in range(2000):
            server.access(f"f{rng.randrange(60)}")
            if i % 3 == 0:
                server.invalidate(f"f{rng.randrange(60)}")
        assert len(server) <= 30
        assert server.stats.accesses == 2000

    def test_delete_heavy_trace_with_invalidation(self):
        rng = random.Random(3)
        trace = Trace()
        for i in range(1500):
            file_id = f"f{rng.randrange(40)}"
            kind = EventKind.DELETE if rng.random() < 0.2 else EventKind.OPEN
            trace.append(
                TraceEvent(file_id, kind, client_id=f"c{rng.randrange(3)}")
            )
        system = DistributedFileSystem(
            client_capacity=15,
            server_capacity=30,
            group_size=5,
            invalidate_on_write=True,
        )
        metrics = system.replay(trace)
        assert metrics.total_client_accesses == 1500
        for cache in system.clients.values():
            assert len(cache) <= 15


class TestMalformedTraceInput:
    def test_truncated_file(self, tmp_path):
        from repro.errors import TraceFormatError
        from repro.traces.reader import read_trace

        path = tmp_path / "broken.trace"
        path.write_text("open a\nopen\n", encoding="utf-8")
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(path)
        assert excinfo.value.line_number == 2

    def test_binary_garbage(self, tmp_path):
        from repro.errors import TraceError
        from repro.traces.reader import read_trace

        path = tmp_path / "garbage.trace"
        path.write_bytes(bytes(range(256)))
        with pytest.raises((TraceError, UnicodeDecodeError, ValueError)):
            read_trace(path)

    def test_empty_file_is_empty_trace(self, tmp_path):
        from repro.traces.reader import read_trace

        path = tmp_path / "empty.trace"
        path.write_text("", encoding="utf-8")
        assert len(read_trace(path)) == 0


class TestNumericEdgeCases:
    def test_capacity_one_everything(self):
        cache = AggregatingClientCache(capacity=1, group_size=5)
        cache.replay(["a", "b"] * 100)
        assert len(cache) == 1
        assert cache.stats.accesses == 200

    def test_zero_length_replay(self):
        cache = AggregatingClientCache(capacity=5, group_size=3)
        stats = cache.replay([])
        assert stats.accesses == 0
        assert cache.fetch_log.mean_group_size == 0.0

    def test_entropy_of_giant_alphabet(self):
        from repro.core.entropy import successor_entropy

        # Every file appears exactly twice, successors all distinct.
        sequence = []
        for i in range(500):
            sequence += [f"x{i}", f"y{i}", f"x{i}", f"z{i}"]
        value = successor_entropy(sequence)
        assert value >= 0.0
