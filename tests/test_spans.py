"""Tests for end-to-end request tracing (``repro.obs.spans``).

Covers the buffer semantics (bounding, sampling, honest counters), the
zero-cost-when-disabled contract, the ``X-Repro-Trace`` header round
trip through a live daemon, client/server merging on trace id, the
Chrome trace-event export, and the slam-driver integration.  Daemons
bind port 0 and are closed via context managers, matching
``test_serve.py``'s no-leaked-sockets discipline.
"""

import http.client
import json
import tracemalloc
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import spans as spans_mod
from repro.obs.quantiles import latency_summary_ns, percentile
from repro.obs.registry import ObservabilityError
from repro.obs.spans import (
    NULL_SPAN,
    SPAN_SCHEMA,
    TRACE_HEADER,
    SpanBuffer,
    endpoint_breakdown,
    format_header,
    format_span_tree,
    load_spans_jsonl,
    maybe_span,
    merge_spans,
    parse_header,
    slowest_traces,
    span_collection,
    spans_chrome_trace,
    write_spans_chrome_trace,
    write_spans_jsonl,
)
from repro.serve import CacheDaemon, ServeConnection, run_slam
from repro.serve.scenario import Scenario
from repro.workloads.synthetic import make_workload


def tiny_scenario(**overrides) -> Scenario:
    scenario = Scenario(capacity=100, group_size=4, events=500, seed=3)
    for key, value in overrides.items():
        setattr(scenario, key, value)
    return scenario


def post_fetch(daemon, files, headers=None):
    """One raw /fetch POST; returns (status, echo_header, payload)."""
    conn = http.client.HTTPConnection(daemon.host, daemon.port, timeout=10)
    try:
        body = json.dumps({"files": files}).encode("utf-8")
        all_headers = {"Content-Type": "application/json"}
        if headers:
            all_headers.update(headers)
        conn.request("POST", "/fetch", body=body, headers=all_headers)
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, response.getheader(TRACE_HEADER), payload
    finally:
        conn.close()


# -- quantile helper ---------------------------------------------------------


class TestQuantiles:
    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0
        assert percentile(list(range(101)), 0.99) == 99.0

    def test_percentile_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError):
            percentile([1.0], 1.01)

    def test_latency_summary_keys(self):
        summary = latency_summary_ns(sorted(range(1000)))
        assert set(summary) == {"p50_ns", "p95_ns", "p99_ns"}
        assert summary["p50_ns"] <= summary["p95_ns"] <= summary["p99_ns"]


# -- span buffer semantics ---------------------------------------------------


class TestSpanBuffer:
    def test_span_ids_unique_and_trace_minted(self):
        buffer = SpanBuffer(process="test")
        one = buffer.start_span("a")
        two = buffer.start_span("b")
        assert one.span != two.span
        assert one.trace != two.trace
        one.finish()
        two.finish()
        assert all(span.finished for span in buffer.spans())

    def test_children_share_trace(self):
        buffer = SpanBuffer(process="test")
        root = buffer.start_span("root", kind="server")
        child = buffer.start_span("child", trace=root.trace, parent=root.span)
        assert child.trace == root.trace
        assert child.parent == root.span

    def test_ring_bounds_and_counts_drops(self):
        buffer = SpanBuffer(process="test", capacity=4)
        started = [buffer.start_span(f"s{i}") for i in range(10)]
        for span in started:
            span.finish()
        summary = buffer.summary()
        assert len(buffer) == 4
        assert summary["started"] == 10
        assert summary["dropped"] == 6
        assert summary["retained"] == 4
        # The ring keeps the newest spans.
        assert [span.name for span in buffer.spans()] == ["s6", "s7", "s8", "s9"]

    def test_finish_idempotent_and_duration_non_negative(self):
        buffer = SpanBuffer(process="test")
        span = buffer.start_span("once")
        span.finish()
        first = span.duration_ns
        span.finish()
        assert span.duration_ns == first
        assert span.to_dict()["duration_ns"] >= 0

    def test_annotate_chains(self):
        buffer = SpanBuffer(process="test")
        span = buffer.start_span("a").annotate("k", 1).annotate("k2", "v")
        span.finish()
        assert span.to_dict()["annotations"] == {"k": 1, "k2": "v"}

    def test_rejects_bad_parameters(self):
        with pytest.raises(ObservabilityError):
            SpanBuffer(process="test", capacity=0)
        with pytest.raises(ObservabilityError):
            SpanBuffer(process="test", sample=0)
        buffer = SpanBuffer(process="test")
        with pytest.raises(ObservabilityError):
            buffer.start_span("x", kind="database")

    def test_summary_is_honest_about_sampling(self):
        buffer = SpanBuffer(process="test", sample=2)
        decisions = [buffer.should_sample() for _ in range(7)]
        summary = buffer.summary()
        assert summary["requests"] == 7
        assert summary["sampled_out"] == decisions.count(False)


class TestSamplingDeterminism:
    def test_every_nth_pattern(self):
        buffer = SpanBuffer(process="test", sample=3)
        decisions = [buffer.should_sample() for _ in range(9)]
        assert decisions == [True, False, False] * 3

    def test_request_zero_always_sampled(self):
        for sample in (1, 2, 10, 1000):
            buffer = SpanBuffer(process="test", sample=sample)
            assert buffer.should_sample() is True

    def test_two_buffers_agree(self):
        one = SpanBuffer(process="a", sample=5)
        two = SpanBuffer(process="b", sample=5)
        assert [one.should_sample() for _ in range(20)] == [
            two.should_sample() for _ in range(20)
        ]


# -- zero cost when disabled -------------------------------------------------


class TestDisabledMode:
    def test_maybe_span_returns_shared_null(self):
        assert spans_mod.ACTIVE is None
        assert maybe_span("anything") is NULL_SPAN
        assert maybe_span("other") is NULL_SPAN

    def test_null_span_absorbs_the_full_protocol(self):
        with maybe_span("x") as span:
            assert span is NULL_SPAN
            span.annotate("k", 1).annotate("k2", 2)
        span.finish()  # idempotent no-op

    def test_disabled_mode_allocates_nothing(self):
        # Same discipline as MetricsRegistry.ENABLED: with no active
        # buffer, the instrumentation path must not allocate in the
        # spans module at all.
        for _ in range(10):  # warm any caches
            maybe_span("warm").annotate("k", 1).finish()
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            for _ in range(1000):
                with maybe_span("hot") as span:
                    span.annotate("k", 1)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        spans_file = tracemalloc.Filter(True, spans_mod.__file__)
        delta = after.filter_traces([spans_file]).compare_to(
            before.filter_traces([spans_file]), "lineno"
        )
        allocated = sum(stat.size_diff for stat in delta if stat.size_diff > 0)
        assert allocated == 0, f"disabled tracing allocated {allocated} bytes"

    def test_span_collection_restores_previous(self):
        assert spans_mod.ACTIVE is None
        with span_collection(process="test") as buffer:
            assert spans_mod.ACTIVE is buffer
            with maybe_span("inside") as span:
                assert span is not NULL_SPAN
        assert spans_mod.ACTIVE is None
        assert [span.name for span in buffer.spans()] == ["inside"]


# -- header contract ---------------------------------------------------------


class TestHeader:
    def test_round_trip(self):
        assert parse_header(format_header("t1", "s1")) == ("t1", "s1")

    def test_malformed_is_ignored(self):
        for bad in (None, "", "nocolon", ":", "a:", ":b", "a:b:c", 42, "x" * 300):
            assert parse_header(bad) is None, bad


# -- live daemon round trip --------------------------------------------------


class TestDaemonTracing:
    def test_header_round_trip_and_child_spans(self):
        buffer = SpanBuffer(process="serve")
        with CacheDaemon(tiny_scenario(), spans=buffer) as daemon:
            status, echo, _ = post_fetch(
                daemon, ["f1", "f2"],
                headers={TRACE_HEADER: format_header("cafe01", "beef02")},
            )
        assert status == 200
        trace, parent = parse_header(echo)
        assert trace == "cafe01"
        roots = [span for span in buffer.spans() if span.kind == "server"]
        assert len(roots) == 1
        root = roots[0]
        assert root.trace == "cafe01"
        assert root.parent == "beef02"
        assert parent == root.span  # echo carries the server span id
        children = {
            span.name: span for span in buffer.spans() if span.parent == root.span
        }
        assert set(children) == {
            "lock.wait", "cache.fetch", "journal.append", "response.write",
        }
        fetch = children["cache.fetch"].to_dict()["annotations"]
        assert fetch["events"] == 2
        assert fetch["hits"] + fetch["misses"] == 2
        assert children["journal.append"].to_dict()["annotations"]["entries"] == 2
        assert children["response.write"].to_dict()["annotations"]["bytes"] > 0
        notes = root.to_dict()["annotations"]
        assert notes["endpoint"] == "/fetch"
        assert notes["status"] == 200
        assert notes["request_id"] >= 1

    def test_malformed_header_does_not_fail_the_request(self):
        buffer = SpanBuffer(process="serve")
        with CacheDaemon(tiny_scenario(), spans=buffer) as daemon:
            status, echo, payload = post_fetch(
                daemon, ["f1"], headers={TRACE_HEADER: "not-a-trace"}
            )
        assert status == 200
        assert payload["count"] == 1
        # The daemon self-minted instead of joining the malformed trace.
        roots = [span for span in buffer.spans() if span.kind == "server"]
        assert roots and roots[0].parent is None
        assert parse_header(echo) is not None

    def test_headerless_requests_self_sample(self):
        buffer = SpanBuffer(process="serve", sample=2)
        with CacheDaemon(tiny_scenario(), spans=buffer) as daemon:
            for _ in range(4):
                post_fetch(daemon, ["f1"])
        roots = [span for span in buffer.spans() if span.kind == "server"]
        assert len(roots) == 2  # requests 0 and 2 of 0..3

    def test_untraced_daemon_sends_no_echo(self):
        with CacheDaemon(tiny_scenario()) as daemon:
            status, echo, _ = post_fetch(
                daemon, ["f1"],
                headers={TRACE_HEADER: format_header("t", "s")},
            )
        assert status == 200
        assert echo is None

    def test_stats_exposes_span_summary(self):
        buffer = SpanBuffer(process="serve")
        with CacheDaemon(tiny_scenario(), spans=buffer) as daemon:
            post_fetch(daemon, ["f1"])
            with ServeConnection(daemon.url) as conn:
                stats = conn.stats()
        assert stats["spans"]["schema"] == SPAN_SCHEMA
        assert stats["spans"]["started"] > 0

    def test_access_log_carries_the_trace_id(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        buffer = SpanBuffer(process="serve")
        with CacheDaemon(
            tiny_scenario(), spans=buffer, access_log=log_path
        ) as daemon:
            post_fetch(
                daemon, ["f1"],
                headers={TRACE_HEADER: format_header("feed05", "beef06")},
            )
        lines = [
            json.loads(line)
            for line in log_path.read_text(encoding="utf-8").splitlines()
        ]
        traced = [line for line in lines if line["endpoint"] == "/fetch"]
        assert traced and traced[0]["trace"] == "feed05"
        assert isinstance(traced[0]["id"], int)

    def test_access_log_trace_is_null_when_untraced(self, tmp_path):
        log_path = tmp_path / "access.jsonl"
        with CacheDaemon(tiny_scenario(), access_log=log_path) as daemon:
            post_fetch(daemon, ["f1"])
        lines = [
            json.loads(line)
            for line in log_path.read_text(encoding="utf-8").splitlines()
        ]
        assert lines and all(line["trace"] is None for line in lines)

    def test_span_log_written_on_close(self, tmp_path):
        span_log = tmp_path / "server-spans.jsonl"
        scenario = tiny_scenario()
        daemon = CacheDaemon(scenario, span_log=span_log, span_capacity=128)
        daemon.start()
        try:
            post_fetch(daemon, ["f1", "f2"])
        finally:
            daemon.close()
        loaded = load_spans_jsonl(span_log)
        assert loaded["meta"]["role"] == "server"
        assert loaded["meta"]["capacity"] == 128
        assert any(span["name"] == "cache.fetch" for span in loaded["spans"])


# -- JSONL export ------------------------------------------------------------


class TestExport:
    def test_round_trip(self, tmp_path):
        buffer = SpanBuffer(process="exporter")
        with buffer.start_span("root", kind="client") as root:
            root.annotate("endpoint", "/fetch")
        path = tmp_path / "spans.jsonl"
        count = write_spans_jsonl(buffer, path, meta={"role": "client"})
        assert count == 2  # meta line + one span
        loaded = load_spans_jsonl(path)
        assert loaded["meta"]["role"] == "client"
        assert loaded["spans"][0]["name"] == "root"
        assert loaded["spans"][0]["span_kind"] == "client"

    def test_load_rejects_missing_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "span"}\n', encoding="utf-8")
        with pytest.raises(ObservabilityError):
            load_spans_jsonl(path)


# -- merging and analysis ----------------------------------------------------


def synthetic_spans():
    """A hand-built two-trace client/server span set (times in ns)."""
    def span(trace, span_id, parent, name, kind, process, start, dur, **notes):
        return {
            "kind": "span", "trace": trace, "span": span_id,
            "parent": parent, "name": name, "span_kind": kind,
            "process": process, "tid": 1, "start_ns": start,
            "duration_ns": dur, "annotations": notes,
        }

    client = [
        span("t1", "c1", None, "client /fetch", "client", "worker00",
             1_000, 5_000_000, endpoint="/fetch"),
        span("t2", "c2", None, "client /fetch", "client", "worker00",
             6_000_000, 2_000_000, endpoint="/fetch"),
        span("t9", "c9", None, "client /fetch", "client", "worker00",
             9_000_000, 1_000_000, endpoint="/fetch"),  # unpaired
    ]
    server = [
        span("t1", "s1", "c1", "POST /fetch", "server", "serve",
             2_000_000, 3_000_000, endpoint="/fetch"),
        span("t1", "s1a", "s1", "lock.wait", "internal", "serve",
             2_100_000, 500_000),
        span("t1", "s1b", "s1", "cache.fetch", "internal", "serve",
             2_700_000, 1_000_000, hits=3, misses=1),
        span("t2", "s2", "c2", "POST /fetch", "server", "serve",
             6_500_000, 1_000_000, endpoint="/fetch"),
        span("t3", "s3", None, "GET /stats", "server", "serve",
             8_000_000, 200_000, endpoint="/stats"),  # server-only
    ]
    return client, server


class TestMergeAndAnalysis:
    def test_merge_pairs_on_trace_id(self):
        client, server = synthetic_spans()
        merged = merge_spans(client, server)
        assert merged["paired"] == 2
        assert merged["client_only"] == 1
        assert merged["server_only"] == 1
        t1 = next(t for t in merged["traces"] if t["trace"] == "t1")
        assert t1["paired"] is True
        assert t1["client"]["span"] == "c1"
        assert t1["server"]["span"] == "s1"
        assert [child["name"] for child in t1["children"]] == [
            "lock.wait", "cache.fetch",
        ]

    def test_pairing_requires_parent_link(self):
        client, server = synthetic_spans()
        for span in server:
            if span["span"] == "s1":
                span["parent"] = "someone-else"
        merged = merge_spans(client, server)
        t1 = next(t for t in merged["traces"] if t["trace"] == "t1")
        assert t1["paired"] is False

    def test_endpoint_breakdown_rows(self):
        client, server = synthetic_spans()
        rows = endpoint_breakdown(merge_spans(client, server))
        fetch = next(row for row in rows if row["endpoint"] == "/fetch")
        assert fetch["requests"] == 3
        assert fetch["paired"] == 2
        # client t1 = 5ms, server t1 = 3ms -> net+queue 2ms at the top end.
        assert fetch["client_p99_ms"] == pytest.approx(5.0, rel=0.05)
        assert fetch["net_queue_p99_ms"] == pytest.approx(2.0, rel=0.05)
        shares = (
            fetch["lock_share"] + fetch["cache_share"]
            + fetch["journal_share"] + fetch["write_share"]
            + fetch["other_share"]
        )
        assert 0.0 <= shares <= 1.0 + 1e-9

    def test_slowest_traces_ordered_by_duration(self):
        client, server = synthetic_spans()
        slowest = slowest_traces(merge_spans(client, server), top=2)
        assert [t["trace"] for t in slowest] == ["t1", "t2"]

    def test_format_span_tree_mentions_everything(self):
        client, server = synthetic_spans()
        merged = merge_spans(client, server)
        t1 = next(t for t in merged["traces"] if t["trace"] == "t1")
        text = "\n".join(format_span_tree(t1))
        for needle in ("t1", "client /fetch", "POST /fetch", "lock.wait",
                       "cache.fetch", "net+queue", "hits=3"):
            assert needle in text


# -- Chrome trace export -----------------------------------------------------


class TestChromeExport:
    def test_payload_shape(self):
        client, server = synthetic_spans()
        payload = spans_chrome_trace(client + server, meta={"run": "test"})
        events = payload["traceEvents"]
        names = {
            event["args"]["name"]
            for event in events
            if event.get("ph") == "M" and event["name"] == "process_name"
        }
        assert names == {"worker00", "serve"}
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == len(client) + len(server)
        for event in complete:
            assert event["dur"] > 0
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        assert payload["otherData"]["schema"] == SPAN_SCHEMA
        assert payload["otherData"]["run"] == "test"

    def test_write_is_valid_json(self, tmp_path):
        client, server = synthetic_spans()
        out = tmp_path / "chrome.json"
        count = write_spans_chrome_trace(client + server, out)
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"


# -- slam integration --------------------------------------------------------


class TestSlamTracing:
    def run_traced_slam(self, tmp_path, **kwargs):
        source = list(make_workload("server", 600, 11).file_ids())
        server_buffer = SpanBuffer(process="serve")
        with CacheDaemon(tiny_scenario(), spans=server_buffer) as daemon:
            report = run_slam(
                daemon.url, source, workers=1, batch=16,
                span_dir=tmp_path, **kwargs,
            )
        return report, server_buffer

    def test_client_and_server_spans_pair(self, tmp_path):
        report, server_buffer = self.run_traced_slam(tmp_path)
        assert report.retries == 0
        span_files = sorted(Path(tmp_path).glob("spans-worker*.jsonl"))
        assert len(span_files) == 1
        client_spans = load_spans_jsonl(span_files[0])["spans"]
        assert len(client_spans) == report.requests
        server_spans = [span.to_dict() for span in server_buffer.spans()]
        merged = merge_spans(client_spans, server_spans)
        assert merged["paired"] == report.requests
        assert merged["client_only"] == 0
        assert report.spans["client_spans"] == report.requests
        assert report.spans["files"] == [str(span_files[0])]

    def test_span_sampling_reduces_client_spans(self, tmp_path):
        report, _ = self.run_traced_slam(tmp_path, span_sample=5)
        client_spans = load_spans_jsonl(
            next(Path(tmp_path).glob("spans-worker*.jsonl"))
        )["spans"]
        expected = (report.requests + 4) // 5  # every 5th, request 0 included
        assert len(client_spans) == expected
        assert report.spans["sampled_out"] == report.requests - expected

    def test_buffer_bounds_under_load(self, tmp_path):
        report, _ = self.run_traced_slam(tmp_path, span_capacity=16)
        loaded = load_spans_jsonl(
            next(Path(tmp_path).glob("spans-worker*.jsonl"))
        )
        assert loaded["meta"]["dropped"] == report.requests - 16
        assert len(loaded["spans"]) == 16

    def test_report_carries_worker_spread(self, tmp_path):
        report, _ = self.run_traced_slam(tmp_path)
        assert len(report.worker_latency) == 1
        worker = report.worker_latency[0]
        assert worker["requests"] == report.requests
        assert 0 < worker["p50_ms"] <= worker["p99_ms"]
        spread = report.worker_p99_spread_ms
        assert spread["min"] == spread["median"] == spread["max"]
        payload = report.to_dict()
        assert payload["workers_latency"]["per_worker"] == report.worker_latency
        assert payload["spans"]["client_spans"] == report.requests
        rows = dict(report.rows())
        assert "worker p99 min/med/max" in rows


# -- CLI ---------------------------------------------------------------------


class TestSpansCli:
    def test_spans_subcommand_end_to_end(self, tmp_path, capsys):
        client, server = synthetic_spans()
        client_buffer = SpanBuffer(process="worker00")
        client_path = tmp_path / "client.jsonl"
        server_path = tmp_path / "server.jsonl"
        chrome_path = tmp_path / "chrome.json"
        # Write the synthetic sets as repro.span/1 files by hand.
        meta = dict(client_buffer.summary())
        for path, spans in ((client_path, client), (server_path, server)):
            lines = [json.dumps({"kind": "meta", **meta})]
            lines.extend(json.dumps(span) for span in spans)
            path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        code = main([
            "spans",
            "--client", str(client_path),
            "--server", str(server_path),
            "--chrome", str(chrome_path),
            "--top", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 paired" in out
        assert "/fetch" in out
        assert "slowest 2 trace(s)" in out
        payload = json.loads(chrome_path.read_text(encoding="utf-8"))
        assert payload["traceEvents"]
