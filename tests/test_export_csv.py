"""Tests for the repro.ts/1 → CSV converter (scripts/export_csv.py)."""

import csv
import importlib.util
from pathlib import Path

import pytest

from repro.obs import ObservabilityError, windowing, write_ts_jsonl
from repro.sim.engine import DistributedFileSystem
from repro.workloads.synthetic import make_workload

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "export_csv.py"
_spec = importlib.util.spec_from_file_location("export_csv", _SCRIPT)
export_csv = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(export_csv)


def _series(tmp_path):
    with windowing(window=500) as collector:
        DistributedFileSystem(client_capacity=150, group_size=4).replay(
            make_workload("server", 1500, seed=7)
        )
    collector.record_point(0, {"g": 4}, {"events": 1500}, 0.1)
    path = tmp_path / "series.jsonl"
    write_ts_jsonl(collector, path)
    return path, collector


class TestExportTimeseriesCsv:
    def test_one_row_per_sample_with_header(self, tmp_path):
        source, collector = _series(tmp_path)
        destination = tmp_path / "series.csv"
        rows = export_csv.export_timeseries_csv(source, destination)
        assert rows == len(collector.samples)
        with destination.open(newline="") as stream:
            parsed = list(csv.reader(stream))
        assert parsed[0] == list(export_csv.TS_COLUMNS)
        assert len(parsed) == rows + 1

    def test_values_survive_the_conversion(self, tmp_path):
        source, collector = _series(tmp_path)
        destination = tmp_path / "series.csv"
        export_csv.export_timeseries_csv(source, destination)
        with destination.open(newline="") as stream:
            parsed = list(csv.DictReader(stream))
        first = collector.samples[0]
        assert int(parsed[0]["events"]) == first.events
        assert float(parsed[0]["hit_ratio"]) == pytest.approx(first.hit_ratio)
        # The sweep sample keeps its label and renders None entropy as
        # an empty cell, not the string "None".
        assert parsed[-1]["label"] == "g=4"
        assert parsed[-1]["entropy"] == ""

    def test_rejects_non_ts_input(self, tmp_path):
        source = tmp_path / "bad.jsonl"
        source.write_text('{"kind": "meta", "schema": "other/1"}\n')
        with pytest.raises(ObservabilityError):
            export_csv.export_timeseries_csv(source, tmp_path / "out.csv")

    def test_cli_defaults_output_next_to_input(self, tmp_path, capsys):
        source, _ = _series(tmp_path)
        assert export_csv.main(["--timeseries", str(source)]) == 0
        assert source.with_suffix(".csv").exists()
