"""Unit tests for the extension experiments (placement/hoarding/cooperation)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import run_cooperation, run_hoarding, run_placement

EVENTS = 6000


class TestRunPlacement:
    @pytest.fixture(scope="class")
    def figure(self):
        return run_placement(workload="server", events=EVENTS, group_sizes=(2, 8))

    def test_structure(self, figure):
        assert set(figure.labels()) == {
            "frequency",
            "grouped",
            "name",
            "random",
            "replicated",
        }
        assert figure.x_values() == [2.0, 8.0]

    def test_group_agnostic_strategies_flat(self, figure):
        for label in ("random", "name", "frequency"):
            ys = figure.get_series(label).ys()
            assert ys[0] == ys[1], label

    def test_grouped_improves_with_group_size(self, figure):
        grouped = figure.get_series("grouped")
        assert grouped.y_at(8) < grouped.y_at(2)

    def test_grouped_beats_random(self, figure):
        assert (
            figure.get_series("grouped").y_at(8)
            < figure.get_series("random").y_at(8)
        )

    def test_rejects_empty_axis(self):
        with pytest.raises(ExperimentError):
            run_placement(events=EVENTS, group_sizes=())


class TestRunHoarding:
    @pytest.fixture(scope="class")
    def figure(self):
        return run_hoarding(
            workload="server",
            events=EVENTS,
            budgets=(60, 120, 240),
            offline_events=800,
        )

    def test_structure(self, figure):
        assert set(figure.labels()) == {"recency", "frequency", "group-closure"}
        assert len(figure.x_values()) == 3

    def test_miss_rates_bounded(self, figure):
        for series in figure.series:
            assert all(0.0 <= y <= 1.0 for y in series.ys())

    def test_bigger_budget_not_worse(self, figure):
        for label in ("recency", "frequency"):
            ys = figure.get_series(label).ys()
            assert ys[-1] <= ys[0] + 1e-9, label

    def test_rejects_bad_offline_window(self):
        with pytest.raises(ExperimentError):
            run_hoarding(events=500, offline_events=500)

    def test_rejects_empty_budgets(self):
        with pytest.raises(ExperimentError):
            run_hoarding(events=EVENTS, budgets=())


class TestRunCooperation:
    @pytest.fixture(scope="class")
    def figure(self):
        return run_cooperation(
            workload="server",
            events=EVENTS,
            filter_capacities=(50, 300),
            server_capacity=200,
        )

    def test_structure(self, figure):
        assert figure.labels() == ["cooperative", "filtered"]

    def test_rates_are_percentages(self, figure):
        for series in figure.series:
            assert all(0.0 <= y <= 100.0 for y in series.ys())

    def test_cooperation_not_harmful(self, figure):
        # Extra information can only help group construction (within
        # simulation jitter).
        for x in (50.0, 300.0):
            cooperative = figure.get_series("cooperative").y_at(x)
            filtered = figure.get_series("filtered").y_at(x)
            assert cooperative >= filtered - 3.0

    def test_rejects_empty_filters(self):
        with pytest.raises(ExperimentError):
            run_cooperation(events=EVENTS, filter_capacities=())


class TestRunAdaptation:
    @pytest.fixture(scope="class")
    def figure(self):
        from repro.experiments import run_adaptation

        return run_adaptation(events=8000, interval=1000)

    def test_structure(self, figure):
        assert figure.labels() == ["lru", "g5"]
        assert len(figure.get_series("lru")) == 8

    def test_hit_rates_bounded(self, figure):
        for series in figure.series:
            assert all(0.0 <= y <= 1.0 for y in series.ys())

    def test_grouping_recovers_at_least_as_well(self, figure):
        # Post-shift steady state: the last interval's hit rate.
        lru_final = figure.get_series("lru").ys()[-1]
        g5_final = figure.get_series("g5").ys()[-1]
        assert g5_final >= lru_final - 0.02

    def test_rejects_bad_interval(self):
        from repro.experiments import run_adaptation
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_adaptation(events=4000, interval=0)


class TestRunServerCapacity:
    @pytest.fixture(scope="class")
    def figure(self):
        from repro.experiments import run_server_capacity

        return run_server_capacity(
            events=8000, server_capacities=(100, 300, 600), filter_capacity=300
        )

    def test_structure(self, figure):
        assert figure.labels() == ["g5", "lru", "lfu"]
        assert figure.x_values() == [100.0, 300.0, 600.0]

    def test_grouping_dominates_when_server_small(self, figure):
        # The paper's motivating regime: server <= client capacity.
        for x in (100.0, 300.0):
            assert figure.get_series("g5").y_at(x) > figure.get_series(
                "lru"
            ).y_at(x)

    def test_hit_rates_grow_with_server_capacity(self, figure):
        for label in ("g5", "lru"):
            ys = figure.get_series(label).ys()
            assert ys[-1] >= ys[0]

    def test_rejects_empty(self):
        from repro.experiments import run_server_capacity
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_server_capacity(events=4000, server_capacities=())


class TestRunMetadataBudget:
    @pytest.fixture(scope="class")
    def figure(self):
        from repro.experiments import run_metadata_budget

        return run_metadata_budget(
            workload="server", events=6000, successor_capacities=(1, 4, 8)
        )

    def test_structure(self, figure):
        assert figure.labels() == ["demand-fetches", "metadata-entries"]
        assert figure.x_values() == [1.0, 4.0, 8.0]

    def test_fetches_flat_within_noise(self, figure):
        # The sharpened minimal-metadata finding: group construction is
        # head-of-list driven, so fetch counts barely move with depth.
        fetches = figure.get_series("demand-fetches").ys()
        assert max(fetches) <= min(fetches) * 1.02

    def test_metadata_grows_with_capacity(self, figure):
        entries = figure.get_series("metadata-entries").ys()
        assert entries == sorted(entries)
        assert entries[-1] > entries[0]

    def test_rejects_empty(self):
        from repro.experiments import run_metadata_budget
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_metadata_budget(events=4000, successor_capacities=())
