"""Deep tests for the individual synthetic-workload mechanisms.

Each calibration knob exists because some paper claim depends on it;
these tests isolate each mechanism and verify it produces the effect
it was added for (see WorkloadSpec field docs and docs/architecture.md).
"""

from dataclasses import replace


from repro.core.entropy import successor_entropy
from repro.core.successors import evaluate_successor_misses
from repro.workloads.synthetic import SERVER_SPEC, WorkloadSpec, build_workload

BASE = WorkloadSpec(
    name="lab",
    clients=1,
    activities_per_client=10,
    chain_length=30,
    scripted_fraction=1.0,
    burst_mean=60.0,
    noise_files=0,
    noise_probability=0.0,
    shared_probability=0.0,
)
EVENTS = 8000


def entropy_of(spec, seed=1):
    return successor_entropy(build_workload(spec, EVENTS, seed).file_ids())


class TestNoiseMechanism:
    def test_noise_raises_entropy(self):
        quiet = entropy_of(BASE)
        noisy = entropy_of(
            replace(BASE, noise_files=100, noise_probability=0.15)
        )
        assert noisy > quiet + 0.3


class TestDriftMechanism:
    def test_drift_degrades_frequency_lists_more_than_recency(self):
        drifting = replace(BASE, scripted_drift=1.0)
        sequence = build_workload(drifting, EVENTS, 1).file_ids()
        lru = evaluate_successor_misses(sequence, "lru", 2).miss_probability
        lfu = evaluate_successor_misses(sequence, "lfu", 2).miss_probability
        assert lru <= lfu + 0.005

    def test_drift_preserves_file_population(self):
        drifting = replace(BASE, scripted_drift=1.0)
        static = BASE
        drifted_files = set(build_workload(drifting, EVENTS, 1).file_ids())
        static_files = set(build_workload(static, EVENTS, 1).file_ids())
        assert drifted_files == static_files


class TestEphemeralMechanism:
    def test_ephemeral_slots_create_single_access_files(self):
        from collections import Counter

        churning = replace(BASE, ephemeral_fraction=0.3)
        counts = Counter(build_workload(churning, EVENTS, 1).file_ids())
        singles = sum(1 for c in counts.values() if c == 1)
        assert singles > 0.3 * len(counts)

    def test_base_has_few_single_access_files(self):
        from collections import Counter

        counts = Counter(build_workload(BASE, EVENTS, 1).file_ids())
        singles = sum(1 for c in counts.values() if c == 1)
        assert singles < 0.1 * len(counts)


class TestRepeatMechanism:
    def test_repeats_absorbed_by_capacity_one_cache(self):
        from repro.caching.lru import LRUCache
        from repro.traces.filters import cache_filtered

        repeating = replace(BASE, repeat_probability=0.3)
        trace = build_workload(repeating, EVENTS, 1)
        filtered = cache_filtered(trace, LRUCache(1))
        # A meaningful share of the stream is immediate re-opens.
        assert len(filtered) < 0.85 * len(trace)

    def test_repeat_preserves_event_count(self):
        repeating = replace(BASE, repeat_probability=0.5, repeat_mean=2.0)
        assert len(build_workload(repeating, EVENTS, 1)) == EVENTS


class TestLibraryMechanism:
    def test_library_files_shared_across_activities(self):
        shared = replace(BASE, library_fraction=0.3, library_files=50)
        trace = build_workload(shared, EVENTS, 1)
        # A library file must appear adjacent to files of at least two
        # different activities.
        contexts = {}
        ids = trace.file_ids()
        for index, file_id in enumerate(ids[:-1]):
            if "/lib/" in file_id:
                neighbor = ids[index + 1]
                if "/a" in neighbor:
                    activity = neighbor.split("/f")[0]
                    contexts.setdefault(file_id, set()).add(activity)
        multi_context = [f for f, ctx in contexts.items() if len(ctx) >= 2]
        assert multi_context

    def test_library_raises_out_degree_of_hot_files(self):
        from repro.core.graph import RelationshipGraph

        shared = replace(BASE, library_fraction=0.3, library_files=20)
        graph = RelationshipGraph.from_sequence(
            build_workload(shared, EVENTS, 1).file_ids()
        )
        lib_degrees = [
            graph.out_degree(node)
            for node in graph.nodes()
            if "/lib/" in node
        ]
        assert lib_degrees and max(lib_degrees) >= 3


class TestLoopMechanism:
    def test_loops_create_short_reuse_distances(self):
        from repro.traces.stats import interreference_distances

        looping = replace(BASE, loop_probability=0.3)
        trace = build_workload(looping, EVENTS, 1)
        distances = interreference_distances(trace)
        short = sum(1 for d in distances if d <= 10)
        base_distances = interreference_distances(build_workload(BASE, EVENTS, 1))
        base_short = sum(1 for d in base_distances if d <= 10)
        assert short > base_short * 2


class TestPreferenceDrift:
    def test_drift_spreads_activity_usage(self):
        concentrated = replace(
            BASE, activity_exponent=2.5, preference_drift=0.0, burst_mean=20.0
        )
        drifting = replace(
            BASE, activity_exponent=2.5, preference_drift=0.5, burst_mean=20.0
        )

        def activity_spread(spec):
            ids = build_workload(spec, EVENTS, 3).file_ids()
            activities = {f.split("/f")[0] for f in ids if "/a" in f}
            return len(activities)

        assert activity_spread(drifting) >= activity_spread(concentrated)


class TestServerSpecSanity:
    def test_server_spec_is_most_deterministic_configuration(self):
        # The preset must stay in the calibrated regime even if
        # individual fields are tweaked upward elsewhere.
        assert SERVER_SPEC.noise_probability <= 0.02
        assert SERVER_SPEC.scripted_fraction >= 0.9
        assert SERVER_SPEC.loop_probability <= 0.05
        entropy = entropy_of(SERVER_SPEC, seed=4)
        assert entropy < 1.2
