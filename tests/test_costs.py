"""Unit tests for the latency cost model and prefetch accounting."""

import pytest

from repro.errors import SimulationError
from repro.sim.costs import (
    CostModel,
    InstrumentedAggregatingCache,
    PrefetchOutcome,
    price_replay,
)


class TestCostModel:
    def test_demand_only_cost(self):
        model = CostModel(hit_time=1.0, request_latency=10.0, transfer_time=5.0)
        assert model.demand_only_cost(hits=2, misses=3) == pytest.approx(
            2 * 1.0 + 3 * 15.0
        )

    def test_grouped_cost(self):
        model = CostModel(hit_time=1.0, request_latency=10.0, transfer_time=5.0)
        # 4 hits, 2 group requests shipping 7 files total.
        assert model.grouped_cost(4, 2, 7) == pytest.approx(4 + 20 + 35)

    def test_group_fetch_cheaper_than_individual(self):
        model = CostModel()
        g = 5
        grouped = model.grouped_cost(0, 1, g)
        individual = model.demand_only_cost(0, g)
        assert grouped < individual

    def test_validate_rejects_negative(self):
        with pytest.raises(SimulationError):
            CostModel(hit_time=-1).validate()


class TestPrefetchOutcome:
    def test_accuracy(self):
        outcome = PrefetchOutcome(installed=10, useful=6, wasted=2)
        assert outcome.accuracy == pytest.approx(0.75)
        assert outcome.pending == 2

    def test_accuracy_empty(self):
        assert PrefetchOutcome().accuracy == 0.0


class TestInstrumentedCache:
    def test_useful_prefetch_counted(self):
        cache = InstrumentedAggregatingCache(capacity=10, group_size=3)
        # Teach the chain, evict it, then resume it.
        for _ in range(2):
            for key in ["x", "y", "z"]:
                cache.access(key)
        for i in range(12):
            cache.access(f"junk{i}")
        cache.access("x")  # prefetches y, z
        cache.access("y")  # useful prefetch
        assert cache.outcome.useful >= 1

    def test_wasted_prefetch_counted(self):
        cache = InstrumentedAggregatingCache(capacity=6, group_size=3)
        # Teach the chain, then evict it entirely.
        for _ in range(2):
            for key in ["x", "y", "z"]:
                cache.access(key)
        for i in range(8):
            cache.access(f"flood{i}")
        # Resuming at the head prefetches y and z...
        cache.access("x")
        assert cache.outcome.installed >= 2
        # ...but the task is abandoned: the companions fall off the
        # tail unused and must be counted as waste.
        for i in range(8):
            cache.access(f"again{i}")
        assert cache.outcome.wasted >= 2
        assert cache.outcome.useful == 0

    def test_conservation(self):
        cache = InstrumentedAggregatingCache(capacity=8, group_size=4)
        sequence = [f"f{i % 12}" for i in range(400)]
        cache.replay(sequence)
        outcome = cache.outcome
        assert outcome.useful + outcome.wasted + outcome.pending == outcome.installed
        assert outcome.installed == cache.fetch_log.predicted_installed


class TestPriceReplay:
    def test_structure_and_speedup(self):
        files = [f"f{i}" for i in range(40)]
        sequence = files * 8
        comparison = price_replay(sequence, capacity=20, group_size=5)
        assert set(comparison) == {"lru", "g5"}
        assert comparison["g5"]["requests"] < comparison["lru"]["requests"]
        assert comparison.speedup("lru", "g5") > 1.0

    def test_group_size_one_prices_equal(self):
        sequence = [f"f{i % 9}" for i in range(200)]
        comparison = price_replay(sequence, capacity=5, group_size=1)
        assert comparison["g1"]["total_latency"] == pytest.approx(
            comparison["lru"]["total_latency"]
        )

    def test_rejects_empty_sequence(self):
        with pytest.raises(SimulationError):
            price_replay([], capacity=5)

    def test_custom_model_applied(self):
        sequence = ["a", "b"] * 50
        free_network = CostModel(hit_time=0.0, request_latency=0.0, transfer_time=0.0)
        comparison = price_replay(sequence, capacity=5, model=free_network)
        assert comparison["lru"]["total_latency"] == 0.0

    def test_prefetch_metrics_reported(self):
        files = [f"f{i}" for i in range(30)]
        comparison = price_replay(files * 6, capacity=15, group_size=5)
        assert 0.0 <= comparison["g5"]["prefetch_accuracy"] <= 1.0
        assert comparison["g5"]["wasted_transfers"] >= 0
