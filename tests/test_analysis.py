"""Unit tests for series containers, ASCII charts, and exporters."""

import pytest

from repro.analysis.ascii_chart import render_figure, render_sparkline
from repro.analysis.export import figure_to_csv, figure_to_markdown, rows_to_markdown
from repro.analysis.series import FigureData, Series
from repro.errors import AnalysisError


@pytest.fixture
def small_figure():
    figure = FigureData(
        figure_id="figX",
        title="Test figure",
        xlabel="capacity",
        ylabel="hit rate",
        notes="unit test",
    )
    lru = figure.add_series("lru")
    lru.add(100, 0.5)
    lru.add(200, 0.6)
    g5 = figure.add_series("g5")
    g5.add(100, 0.7)
    g5.add(200, 0.8)
    return figure


class TestSeries:
    def test_add_and_project(self):
        series = Series("s")
        series.add(1, 2)
        series.add(3, 4)
        assert series.xs() == [1.0, 3.0]
        assert series.ys() == [2.0, 4.0]
        assert len(series) == 2

    def test_y_at(self):
        series = Series("s", points=[(1.0, 2.0)])
        assert series.y_at(1.0) == 2.0
        with pytest.raises(AnalysisError):
            series.y_at(9.0)


class TestFigureData:
    def test_duplicate_series_rejected(self, small_figure):
        with pytest.raises(AnalysisError):
            small_figure.add_series("lru")

    def test_get_series(self, small_figure):
        assert small_figure.get_series("g5").label == "g5"
        with pytest.raises(AnalysisError, match="lru"):
            small_figure.get_series("nope")

    def test_labels_in_order(self, small_figure):
        assert small_figure.labels() == ["lru", "g5"]

    def test_x_values_union(self, small_figure):
        small_figure.get_series("g5").add(300, 0.9)
        assert small_figure.x_values() == [100.0, 200.0, 300.0]

    def test_y_range(self, small_figure):
        assert small_figure.y_range() == (0.5, 0.8)

    def test_y_range_empty(self):
        figure = FigureData("f", "t", "x", "y")
        assert figure.y_range() == (0.0, 1.0)

    def test_to_rows_ragged(self, small_figure):
        small_figure.get_series("g5").add(300, 0.9)
        rows = small_figure.to_rows()
        assert rows[0] == ["capacity", "lru", "g5"]
        # The x=300 row has an empty cell for lru.
        last = rows[-1]
        assert last[0] == 300.0
        assert last[1] == ""
        assert last[2] == 0.9


class TestRenderFigure:
    def test_contains_title_legend_axes(self, small_figure):
        art = render_figure(small_figure)
        assert "Test figure" in art
        assert "lru" in art and "g5" in art
        assert "capacity" in art
        assert "hit rate" in art
        assert "unit test" in art

    def test_empty_figure(self):
        figure = FigureData("f", "Empty", "x", "y")
        assert "(no data)" in render_figure(figure)

    def test_rejects_tiny_canvas(self, small_figure):
        with pytest.raises(AnalysisError):
            render_figure(small_figure, width=4, height=2)

    def test_flat_series_renders(self):
        figure = FigureData("f", "Flat", "x", "y")
        series = figure.add_series("flat")
        for x in range(5):
            series.add(x, 1.0)
        art = render_figure(figure)
        assert "Flat" in art

    def test_single_point(self):
        figure = FigureData("f", "Dot", "x", "y")
        figure.add_series("s").add(1, 1)
        assert "Dot" in render_figure(figure)


class TestSparkline:
    def test_length_preserved(self):
        assert len(render_sparkline([1, 2, 3])) == 3

    def test_resampling(self):
        assert len(render_sparkline(list(range(100)), width=10)) == 10

    def test_flat_values(self):
        art = render_sparkline([5, 5, 5])
        assert len(set(art)) == 1

    def test_empty(self):
        assert render_sparkline([]) == ""


class TestExport:
    def test_csv_text(self, small_figure):
        text = figure_to_csv(small_figure)
        lines = text.strip().splitlines()
        assert lines[0] == "capacity,lru,g5"
        assert lines[1] == "100,0.5,0.7"

    def test_csv_to_file(self, small_figure, tmp_path):
        path = tmp_path / "fig.csv"
        figure_to_csv(small_figure, path)
        assert path.read_text().startswith("capacity")

    def test_markdown_table(self, small_figure):
        markdown = figure_to_markdown(small_figure)
        assert "**figX: Test figure**" in markdown
        assert "| capacity | lru | g5 |" in markdown
        assert "*unit test*" in markdown

    def test_markdown_no_caption(self, small_figure):
        markdown = figure_to_markdown(small_figure, caption=False)
        assert "figX" not in markdown

    def test_rows_to_markdown(self):
        rows = [["a", "b"], [1, 2.5]]
        markdown = rows_to_markdown(rows)
        assert markdown.splitlines()[0] == "| a | b |"
        assert "| 1 | 2.5 |" in markdown

    def test_rows_to_markdown_empty(self):
        assert rows_to_markdown([]) == ""
