"""Unit tests for the aggregating cache (client- and server-side)."""


from repro.caching.lru import LRUCache
from repro.caching.multilevel import TwoLevelHierarchy
from repro.core.aggregating_cache import AggregatingClientCache, AggregatingServerCache
from repro.core.successors import SuccessorTracker


class TestAggregatingClientCache:
    def test_group_size_one_equals_lru(self):
        sequence = [f"f{i % 7}" for i in range(200)] + [f"g{i % 13}" for i in range(200)]
        aggregating = AggregatingClientCache(capacity=5, group_size=1)
        aggregating.replay(sequence)
        plain = LRUCache(5)
        for key in sequence:
            plain.access(key)
        assert aggregating.demand_fetches == plain.stats.misses
        assert aggregating.stats.hits == plain.stats.hits

    def test_grouping_reduces_fetches_on_chain(self):
        files = [f"f{i}" for i in range(40)]
        sequence = files * 8  # cycle larger than the cache: LRU thrashes
        lru = AggregatingClientCache(capacity=20, group_size=1)
        lru.replay(sequence)
        grouped = AggregatingClientCache(capacity=20, group_size=5)
        grouped.replay(sequence)
        assert grouped.demand_fetches < lru.demand_fetches * 0.6

    def test_demanded_file_is_mru(self):
        cache = AggregatingClientCache(capacity=4, group_size=2)
        cache.access("a")
        cache.access("b")
        cache.access("a")
        resident = list(cache.resident_files())
        assert resident[-1] == "a"  # MRU end

    def test_companions_at_tail(self):
        cache = AggregatingClientCache(capacity=10, group_size=3)
        # Teach the tracker a chain, then miss on its head.
        for _ in range(2):
            for key in ["x", "y", "z"]:
                cache.access(key)
        cache.access("unrelated1")
        cache.access("unrelated2")
        # Now x's group is (x, y, z); y and z are already resident from
        # earlier accesses though.  Use a fresh chain head instead:
        tracker = cache.tracker
        tracker.observe_transition("h", "h2")
        tracker.observe_transition("h2", "h3")
        cache.access("h")
        resident = list(cache.resident_files())
        assert resident[-1] == "h"  # demanded at MRU
        assert resident[0] in ("h3", "h2")  # companions at LRU end

    def test_fetch_log_accounting(self):
        cache = AggregatingClientCache(capacity=10, group_size=3)
        for _ in range(3):
            for key in ["x", "y", "z"]:
                cache.access(key)
        log = cache.fetch_log
        assert log.group_fetches == cache.demand_fetches
        assert log.files_retrieved >= log.group_fetches
        assert log.predicted_installed == log.files_retrieved - log.group_fetches
        assert log.mean_group_size >= 1.0

    def test_shared_tracker(self):
        tracker = SuccessorTracker()
        tracker.observe_sequence(["a", "b", "c"])
        cache = AggregatingClientCache(
            capacity=10, group_size=3, shared_tracker=tracker
        )
        cache.access("a")
        # Pre-trained metadata was used: b and c were prefetched.
        assert "b" in cache
        assert "c" in cache

    def test_hits_still_feed_tracker(self):
        cache = AggregatingClientCache(capacity=10, group_size=2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # hit
        cache.access("b")  # hit; transition a->b observed twice
        assert cache.tracker.most_likely("a") == "b"

    def test_capacity_bound(self):
        cache = AggregatingClientCache(capacity=6, group_size=5)
        for i in range(100):
            cache.access(f"f{i % 17}")
        assert len(cache) <= 6

    def test_mean_group_size_zero_when_unused(self):
        cache = AggregatingClientCache(capacity=4, group_size=3)
        assert cache.fetch_log.mean_group_size == 0.0


class TestAggregatingServerCache:
    def test_implements_cache_protocol(self):
        server = AggregatingServerCache(capacity=10, group_size=3)
        assert server.access("a") is False
        assert server.access("a") is True
        assert "a" in server
        assert len(server) >= 1
        assert server.policy_name == "aggregating"

    def test_learns_from_filtered_stream_only(self):
        server = AggregatingServerCache(capacity=10, group_size=3)
        hierarchy = TwoLevelHierarchy(LRUCache(2), server)
        sequence = ["a", "b", "a", "b", "c", "d"]
        hierarchy.replay(sequence)
        # The client absorbed the repeats; the server saw each miss.
        assert server.stats.accesses == hierarchy.client.stats.misses

    def test_group_prefetch_serves_future_requests(self):
        server = AggregatingServerCache(capacity=20, group_size=4)
        chain = ["x", "y", "z", "w"]
        # Teach the server the chain via its own request stream.
        for _ in range(2):
            for key in chain:
                server.access(key)
        # Evict everything with unrelated traffic.
        for i in range(30):
            server.access(f"junk{i}")
        # A request for the chain head now prefetches the whole chain.
        server.access("x")
        assert "y" in server
        assert "z" in server

    def test_invalidate(self):
        server = AggregatingServerCache(capacity=10, group_size=2)
        server.access("a")
        assert server.invalidate("a") is True
        assert "a" not in server

    def test_stats_shared_with_inner_cache(self):
        server = AggregatingServerCache(capacity=10, group_size=2)
        server.access("a")
        server.access("a")
        assert server.stats.hits == 1
        assert server.stats.misses == 1

    def test_keys(self):
        server = AggregatingServerCache(capacity=10, group_size=2)
        server.access("a")
        assert "a" in list(server.keys())
