"""Unit tests for the shared progress-callback plumbing.

Both long-running drivers (the sweep runner and the windowed replay)
report through one callback contract — ``(index, total, params,
elapsed)`` — with the historical narrower shapes adapted in one place.
"""

import pytest

from repro.errors import ExperimentError
from repro.sim.progress import normalize_progress, progress_arity
from repro.sim.sweep import SweepGrid, run_sweep, _progress_arity


class TestProgressArity:
    def test_counts_positional_parameters(self):
        assert progress_arity(lambda i, t: None) == 2
        assert progress_arity(lambda i, t, p: None) == 3
        assert progress_arity(lambda i, t, p, e: None) == 4

    def test_var_positional_means_full_form(self):
        assert progress_arity(lambda *args: None) == 4

    def test_counts_above_four_are_capped(self):
        assert progress_arity(lambda a, b, c, d, e=0: None) == 4

    def test_unreadable_signature_means_full_form(self):
        assert progress_arity(print) == 4

    def test_sweep_reexports_the_helper(self):
        # The historical private shim is now an alias of the shared
        # helper; old imports must keep working.
        assert _progress_arity is progress_arity


class TestNormalizeProgress:
    def test_none_passes_through(self):
        assert normalize_progress(None) is None

    def test_four_argument_callback_unwrapped(self):
        def notify(index, total, params, elapsed):
            pass

        assert normalize_progress(notify) is notify

    def test_three_argument_callback_wrapped(self):
        seen = []
        notify = normalize_progress(lambda i, t, p: seen.append((i, t, p)))
        notify(1, 4, {"n": 9}, 0.5)
        assert seen == [(1, 4, {"n": 9})]

    def test_two_argument_callback_deprecated_but_works(self):
        seen = []
        with pytest.warns(DeprecationWarning, match="deprecated"):
            notify = normalize_progress(lambda i, t: seen.append((i, t)))
        notify(1, 4, {"n": 9}, 0.5)
        assert seen == [(1, 4)]

    def test_narrower_than_two_rejected(self):
        with pytest.raises(ExperimentError, match="at least"):
            normalize_progress(lambda i: None)


class TestDriverIntegration:
    def test_sweep_accepts_deprecated_two_argument_form(self):
        seen = []
        grid = SweepGrid().add_axis("n", [5, 6])
        with pytest.warns(DeprecationWarning):
            run_sweep(
                grid,
                lambda n: {"out": n},
                progress=lambda i, total: seen.append((i, total)),
            )
        assert seen == [(0, 2), (1, 2)]

    def test_sweep_rejects_too_narrow_callback(self):
        grid = SweepGrid().add_axis("n", [1])
        with pytest.raises(ExperimentError):
            run_sweep(grid, lambda n: {"out": n}, progress=lambda i: None)

    def test_unwindowed_replay_notifies_once(self):
        from repro.sim.engine import DistributedFileSystem
        from repro.workloads.synthetic import make_workload

        seen = []
        DistributedFileSystem(client_capacity=100).replay(
            make_workload("server", 500, seed=7),
            progress=lambda i, t, p, e: seen.append((i, t)),
        )
        assert seen == [(0, 1)]
