"""Unit tests for the on-disk trace artifact cache."""

from repro.traces.artifacts import (
    CACHE_ENV_VAR,
    artifact_path,
    cache_dir,
    legacy_artifact_path,
    load_artifact,
    load_columnar_artifact,
    load_or_generate,
    load_or_generate_columnar,
    store_artifact,
    store_columnar_artifact,
)
from repro.traces.columnar import MAGIC, ColumnarTrace
from repro.workloads.synthetic import GENERATOR_VERSION, make_workload


class TestCacheDir:
    def test_env_var_sets_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        assert cache_dir() == tmp_path

    def test_default_under_home_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        path = cache_dir()
        assert path is not None
        assert path.parts[-3:] == (".cache", "repro", "traces")

    def test_disable_values(self, monkeypatch):
        for value in ("", "0", "off", "none", "disabled", "OFF", " off "):
            monkeypatch.setenv(CACHE_ENV_VAR, value)
            assert cache_dir() is None, value

    def test_disabled_cache_disables_paths(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "off")
        assert artifact_path("server", 100, None, GENERATOR_VERSION) is None
        assert (
            legacy_artifact_path("server", 100, None, GENERATOR_VERSION)
            is None
        )


class TestArtifactPath:
    def test_key_includes_all_invalidators(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        base = artifact_path("server", 100, None, 1)
        assert base.name == "server-e100-sdefault-v1.ctrace"
        assert artifact_path("users", 100, None, 1) != base
        assert artifact_path("server", 200, None, 1) != base
        assert artifact_path("server", 100, 7, 1) != base
        assert artifact_path("server", 100, None, 2) != base

    def test_legacy_path_shares_stem(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        legacy = legacy_artifact_path("server", 100, None, 1)
        assert legacy.name == "server-e100-sdefault-v1.trace.gz"


class TestRoundTrip:
    def test_load_or_generate_populates_and_serves(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        fresh = load_or_generate("server", 400)
        path = artifact_path("server", 400, None, GENERATOR_VERSION)
        assert path.exists()
        assert path.read_bytes().startswith(MAGIC)
        cached = load_or_generate("server", 400)
        assert cached.events == fresh.events
        assert cached.events == make_workload("server", 400).events

    def test_columnar_load_is_mmap_backed(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        load_or_generate_columnar("server", 400)  # populate
        served = load_or_generate_columnar("server", 400)
        assert served._mmap is not None
        assert served.to_trace().events == make_workload("server", 400).events

    def test_disabled_cache_still_generates(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "off")
        trace = load_or_generate("users", 300)
        assert trace.events == make_workload("users", 300).events

    def test_corrupt_artifact_is_regenerated(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        path = artifact_path("write", 200, None, GENERATOR_VERSION)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not a columnar trace")
        trace = load_or_generate("write", 200)
        assert trace.events == make_workload("write", 200).events
        # The corrupt file was rewritten with the good artifact.
        assert load_columnar_artifact(path, 200) is not None

    def test_bad_header_version_is_regenerated(self, tmp_path, monkeypatch):
        import struct

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        path = artifact_path("write", 150, None, GENERATOR_VERSION)
        load_or_generate("write", 150)  # populate a good artifact
        raw = bytearray(path.read_bytes())
        struct.pack_into("<H", raw, len(MAGIC), 9999)  # future version
        path.write_bytes(bytes(raw))
        assert load_columnar_artifact(path, 150) is None
        trace = load_or_generate("write", 150)
        assert trace.events == make_workload("write", 150).events
        assert load_columnar_artifact(path, 150) is not None

    def test_truncated_artifact_is_regenerated(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        path = artifact_path("server", 180, None, GENERATOR_VERSION)
        load_or_generate("server", 180)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert load_columnar_artifact(path, 180) is None
        trace = load_or_generate("server", 180)
        assert trace.events == make_workload("server", 180).events

    def test_wrong_event_count_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        path = artifact_path("server", 250, None, GENERATOR_VERSION)
        store_columnar_artifact(path, make_workload("server", 100))
        assert load_columnar_artifact(path, 250) is None
        trace = load_or_generate("server", 250)
        assert len(trace) == 250

    def test_store_failure_is_soft(self, tmp_path):
        missing_parent = tmp_path / "file"
        missing_parent.write_text("occupied")
        # Parent "directory" is a file: mkdir fails, store returns False.
        target = missing_parent / "sub" / "x.trace.gz"
        assert store_artifact(target, make_workload("server", 50)) is False
        columnar_target = missing_parent / "sub" / "x.ctrace"
        assert (
            store_columnar_artifact(columnar_target, make_workload("server", 50))
            is False
        )

    def test_version_bump_misses(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        old = artifact_path("server", 150, None, GENERATOR_VERSION)
        store_columnar_artifact(old, make_workload("server", 150))
        bumped = artifact_path("server", 150, None, GENERATOR_VERSION + 1)
        assert not bumped.exists()


class TestLegacyMigration:
    def test_text_artifact_repacked_columnar(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        legacy = legacy_artifact_path("users", 200, None, GENERATOR_VERSION)
        store_artifact(legacy, make_workload("users", 200))
        served = load_or_generate_columnar("users", 200)
        assert isinstance(served, ColumnarTrace)
        assert served.to_trace().events == make_workload("users", 200).events
        # The columnar artifact now exists alongside the legacy file.
        assert artifact_path("users", 200, None, GENERATOR_VERSION).exists()

    def test_text_loader_still_reads_legacy(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        legacy = legacy_artifact_path("users", 120, None, GENERATOR_VERSION)
        store_artifact(legacy, make_workload("users", 120))
        assert load_artifact(legacy, 120) is not None
        assert load_artifact(legacy, 121) is None
