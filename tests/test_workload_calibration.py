"""Calibration tests: the synthetic workloads reproduce the paper's shapes.

These are the substitution-validity tests promised in DESIGN.md: every
qualitative claim the paper's evaluation rests on is asserted here
against the synthetic workloads.  They run at a reduced trace length
(shape-preserving) to stay fast.
"""

import pytest

from repro.core.entropy import successor_entropy
from repro.core.successors import evaluate_successor_misses
from repro.experiments import (
    improvement_over_lru,
    run_fig3,
    run_fig4,
    run_fig7,
    run_fig8,
    workload_sequence,
)

EVENTS = 12_000


@pytest.fixture(scope="module")
def sequences():
    return {
        name: workload_sequence(name, EVENTS)
        for name in ("workstation", "users", "write", "server")
    }


class TestWorkloadCharacter:
    def test_server_is_most_predictable(self, sequences):
        entropies = {
            name: successor_entropy(seq) for name, seq in sequences.items()
        }
        assert entropies["server"] == min(entropies.values())

    def test_server_under_one_bit(self, sequences):
        # "this workload has an average successor entropy significantly
        # less than one bit" (Section 4.5).
        assert successor_entropy(sequences["server"]) < 1.0

    def test_users_is_least_sequence_predictable(self, sequences):
        entropies = {
            name: successor_entropy(seq) for name, seq in sequences.items()
        }
        assert entropies["users"] >= entropies["server"] * 2

    def test_write_has_most_churn(self, sequences):
        def single_fraction(seq):
            from collections import Counter

            counts = Counter(seq)
            return sum(1 for c in counts.values() if c == 1) / len(counts)

        fractions = {
            name: single_fraction(seq) for name, seq in sequences.items()
        }
        assert fractions["write"] == max(fractions.values())


class TestFig3Shapes:
    @pytest.fixture(scope="class")
    def figure(self):
        return run_fig3(
            workload="server",
            events=EVENTS,
            capacities=(100, 300, 500),
            group_sizes=(1, 2, 3, 5, 10),
        )

    def test_every_group_size_beats_lru(self, figure):
        lru = figure.get_series("lru")
        for label in ("g2", "g3", "g5", "g10"):
            series = figure.get_series(label)
            for x in (100, 300, 500):
                assert series.y_at(x) < lru.y_at(x), (label, x)

    def test_gains_monotone_in_group_size(self, figure):
        for x in (100, 300):
            fetches = [
                figure.get_series(label).y_at(x)
                for label in ("lru", "g2", "g3", "g5", "g10")
            ]
            assert fetches == sorted(fetches, reverse=True)

    def test_gains_saturate_after_five(self, figure):
        # "most short term access relationships are captured with groups
        # of approximately five files": the g5 -> g10 increment is much
        # smaller than the lru -> g5 increment.
        lru = figure.get_series("lru").y_at(100)
        g5 = figure.get_series("g5").y_at(100)
        g10 = figure.get_series("g10").y_at(100)
        assert (g5 - g10) < 0.35 * (lru - g5)

    def test_server_gains_exceed_write_gains(self):
        def g5_cut(workload):
            fig = run_fig3(
                workload=workload,
                events=EVENTS,
                capacities=(200,),
                group_sizes=(1, 5),
            )
            lru = fig.get_series("lru").y_at(200)
            g5 = fig.get_series("g5").y_at(200)
            return 1 - g5 / lru

        assert g5_cut("server") > g5_cut("write")

    def test_substantial_reduction_band(self, figure):
        # Paper: g5 cuts demand fetches by over 60% (50-60% headline).
        # At reduced trace length cold misses dilute the cut; accept a
        # generous floor that still rules out broken grouping.
        lru = figure.get_series("lru").y_at(100)
        g5 = figure.get_series("g5").y_at(100)
        assert 1 - g5 / lru > 0.40


class TestFig4Shapes:
    @pytest.fixture(scope="class")
    def figures(self):
        return {
            workload: run_fig4(
                workload=workload,
                events=EVENTS,
                filter_capacities=(50, 150, 300, 500),
                server_capacity=300,
            )
            for workload in ("workstation", "users", "server")
        }

    def test_lru_collapses_with_large_filters(self, figures):
        for workload, figure in figures.items():
            lru = figure.get_series("lru")
            assert lru.y_at(500) < 5.0, workload
            assert lru.y_at(50) > lru.y_at(500), workload

    def test_aggregating_degrades_mildly(self, figures):
        # "the aggregating cache continued to provide hit rates of 30 to
        # 60% where simple LRU caching fails" — we assert a meaningful
        # floor for every workload.
        for workload, figure in figures.items():
            g5 = figure.get_series("g5")
            assert g5.y_at(500) > 5.0, workload

    def test_aggregating_beats_lru_everywhere(self, figures):
        for workload, figure in figures.items():
            g5 = figure.get_series("g5")
            lru = figure.get_series("lru")
            for x in (50, 150, 300, 500):
                assert g5.y_at(x) >= lru.y_at(x), (workload, x)

    def test_improvement_grows_with_filter_capacity(self, figures):
        for workload, figure in figures.items():
            improvements = improvement_over_lru(figure, "g5")
            assert improvements[500.0] > improvements[50.0], workload

    def test_lru_beats_lfu_at_small_filters(self, figures):
        # "It is no surprise that LRU outperforms LFU."
        for workload, figure in figures.items():
            lru = figure.get_series("lru")
            lfu = figure.get_series("lfu")
            assert lru.y_at(50) >= lfu.y_at(50) * 0.95, workload


class TestFig5Shapes:
    def test_lru_tracks_oracle_within_few_entries(self, sequences):
        for workload in ("workstation", "server"):
            oracle = evaluate_successor_misses(
                sequences[workload], "oracle", 1
            ).miss_probability
            lru4 = evaluate_successor_misses(
                sequences[workload], "lru", 4
            ).miss_probability
            assert lru4 - oracle < 0.06, workload

    def test_lru_not_worse_than_lfu_overall(self, sequences):
        # "pure LRU replacement is consistently superior": allow
        # statistical jitter per size but require LRU to win on average
        # and never lose badly.
        for workload in ("workstation", "server"):
            lru_total = 0.0
            lfu_total = 0.0
            for capacity in range(1, 9):
                lru = evaluate_successor_misses(
                    sequences[workload], "lru", capacity
                ).miss_probability
                lfu = evaluate_successor_misses(
                    sequences[workload], "lfu", capacity
                ).miss_probability
                assert lru <= lfu + 0.01, (workload, capacity)
                lru_total += lru
                lfu_total += lfu
            assert lru_total <= lfu_total + 1e-9, workload

    def test_oracle_is_flat_and_lowest(self, sequences):
        seq = sequences["server"]
        oracle1 = evaluate_successor_misses(seq, "oracle", 1).miss_probability
        oracle9 = evaluate_successor_misses(seq, "oracle", 9).miss_probability
        assert oracle1 == pytest.approx(oracle9)
        lru1 = evaluate_successor_misses(seq, "lru", 1).miss_probability
        assert oracle1 <= lru1


class TestFig7Shapes:
    @pytest.fixture(scope="class")
    def figure(self):
        return run_fig7(events=EVENTS, lengths=(1, 2, 4, 8, 12))

    def test_entropy_monotone_in_length(self, figure):
        # Strictly increasing at short lengths; at long lengths finite
        # traces saturate (every symbol nearly unique), so tiny plateau
        # wobble is tolerated.
        for series in figure.series:
            assert series.y_at(1.0) < series.y_at(2.0) < series.y_at(4.0)
            ys = series.ys()
            for left, right in zip(ys, ys[1:]):
                assert right >= left - 0.02, series.label

    def test_server_lowest_at_short_lengths(self, figure):
        for x in (1.0, 2.0, 4.0):
            values = {
                series.label: series.y_at(x) for series in figure.series
            }
            assert values["server"] == min(values.values()), x

    def test_single_successor_most_predictable(self, figure):
        # The paper's core Figure 7 claim: length 1 minimizes entropy
        # for every workload.
        for series in figure.series:
            assert series.y_at(1.0) == min(series.ys()), series.label


class TestFig8Shapes:
    @pytest.fixture(scope="class")
    def figures(self):
        return {
            workload: run_fig8(
                workload=workload,
                events=EVENTS,
                filter_capacities=(1, 10, 50, 100, 500, 1000),
                lengths=(1, 2, 4, 8),
            )
            for workload in ("write", "users")
        }

    def test_monotone_in_length_for_every_filter(self, figures):
        # Same saturation tolerance as Figure 7: strict growth early,
        # plateau wobble allowed at long symbol lengths.
        for workload, figure in figures.items():
            for series in figure.series:
                assert series.y_at(1.0) < series.y_at(2.0), (workload, series.label)
                ys = series.ys()
                for left, right in zip(ys, ys[1:]):
                    assert right >= left - 0.02, (workload, series.label)

    def test_large_filters_more_predictable(self, figures):
        # "increases in cache size from 50 to 1000 show a distinctly
        # more predictable workload."
        for workload, figure in figures.items():
            for x in (1.0, 4.0):
                h50 = figure.get_series("50").y_at(x)
                h500 = figure.get_series("500").y_at(x)
                h1000 = figure.get_series("1000").y_at(x)
                assert h50 > h500 > h1000, (workload, x)

    def test_small_filter_less_predictable_than_large(self, figures):
        # The size-10 filter must sit well above the big filters.
        for workload, figure in figures.items():
            h10 = figure.get_series("10").y_at(1.0)
            h500 = figure.get_series("500").y_at(1.0)
            assert h10 > h500, workload

    def test_tiny_filter_bump_on_write(self, figures):
        # "An intervening cache size of 10 results in a less predictable
        # workload" (than nearly-unfiltered): holds at symbol length 1
        # on the write workload in our calibration.
        figure = figures["write"]
        assert figure.get_series("10").y_at(1.0) >= figure.get_series("1").y_at(1.0) * 0.98
