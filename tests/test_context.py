"""Unit tests for the PPM context-model predictor."""

import pytest

from repro.core.context import PPMPredictor
from repro.core.predictors import PrefetchingCache
from repro.errors import CacheConfigurationError


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(CacheConfigurationError):
            PPMPredictor(max_order=0)
        with pytest.raises(CacheConfigurationError):
            PPMPredictor(max_contexts=-1)


class TestOrderOne:
    def test_behaves_like_frequency_successor_model(self):
        predictor = PPMPredictor(max_order=1)
        for key in ["a", "b", "a", "b", "a", "c"]:
            predictor.update(key)
        assert predictor.predict("a", 1) == ["b"]
        assert predictor.predict("a", 2) == ["b", "c"]

    def test_unknown_context(self):
        predictor = PPMPredictor(max_order=1)
        predictor.update("a")
        assert predictor.predict("ghost", 3) == []


class TestHigherOrders:
    def test_disambiguates_by_longer_context(self):
        # The paper's own Figure 6 motivation: C is followed by D in
        # the pattern (A C D) and by B in the pattern (X C B).  Order 1
        # cannot separate them; order 2 can.
        predictor = PPMPredictor(max_order=2)
        for _ in range(10):
            for key in ["a", "c", "d", "x", "c", "b"]:
                predictor.update(key)
        # History now ends ... x, c, b; simulate being mid-pattern:
        predictor.update("a")
        predictor.update("c")
        assert predictor.predict("c", 1) == ["d"]
        predictor.update("d")
        predictor.update("x")
        predictor.update("c")
        assert predictor.predict("c", 1) == ["b"]

    def test_escape_to_lower_order(self):
        predictor = PPMPredictor(max_order=3)
        for key in ["p", "q", "r"] * 5:
            predictor.update(key)
        # A brand-new context ending in a known file: order-3/2 miss,
        # order-1 still predicts.
        predictor.update("novel")
        predictor.update("q")
        assert predictor.predict("q", 1) == ["r"]

    def test_predictions_deduplicated_across_orders(self):
        predictor = PPMPredictor(max_order=2)
        for key in ["a", "b", "a", "b"]:
            predictor.update(key)
        predictions = predictor.predict("b", 5)
        assert len(predictions) == len(set(predictions))

    def test_k_zero(self):
        predictor = PPMPredictor(max_order=2)
        predictor.update("a")
        assert predictor.predict("a", 0) == []


class TestStateBounds:
    def test_context_budget_enforced(self):
        predictor = PPMPredictor(max_order=1, max_contexts=10)
        for i in range(100):
            predictor.update(f"f{i}")
        assert predictor.context_count() <= 10

    def test_unbounded_by_default(self):
        predictor = PPMPredictor(max_order=1)
        for i in range(50):
            predictor.update(f"f{i}")
        assert predictor.context_count() == 49

    def test_metadata_entries(self):
        predictor = PPMPredictor(max_order=2)
        for key in ["a", "b", "c", "a", "b", "c"]:
            predictor.update(key)
        assert predictor.metadata_entries() >= predictor.context_count()


class TestInPrefetchingCache:
    def test_reduces_fetches_on_cyclic_workload(self):
        files = [f"f{i}" for i in range(30)]
        sequence = files * 6
        from repro.core.predictors import NoopPredictor

        plain = PrefetchingCache(15, NoopPredictor())
        plain.replay(sequence)
        ppm = PrefetchingCache(15, PPMPredictor(max_order=2), prefetch_count=4)
        ppm.replay(sequence)
        assert ppm.demand_fetches < plain.demand_fetches
