"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.traces.events import EventKind, Trace, TraceEvent


@pytest.fixture
def rng():
    """A deterministic RNG for tests that need randomness."""
    return random.Random(1234)


@pytest.fixture
def abc_trace():
    """The paper's Figure 6 example sequence: ACDBEWAXYBUVWDECAB."""
    return Trace.from_file_ids(list("ACDBEWAXYBUVWDECAB"), name="fig6")


@pytest.fixture
def cyclic_sequence():
    """A deterministic cyclic access sequence: 20 files, 10 cycles."""
    files = [f"f{i:02d}" for i in range(20)]
    return files * 10


@pytest.fixture
def mixed_trace():
    """A small trace with every event kind and client attribution."""
    trace = Trace(name="mixed")
    trace.append(TraceEvent("a", EventKind.OPEN, client_id="c1"))
    trace.append(TraceEvent("b", EventKind.READ, client_id="c1"))
    trace.append(TraceEvent("c", EventKind.WRITE, client_id="c2", user_id="u1"))
    trace.append(TraceEvent("d", EventKind.CREATE, client_id="c2"))
    trace.append(TraceEvent("a", EventKind.DELETE, process_id="p9"))
    trace.append(TraceEvent("b", EventKind.CLOSE))
    trace.append(TraceEvent("a", EventKind.OPEN, client_id="c1"))
    return trace
