"""Unit tests for related-work predictors and the prefetching harness."""

import pytest

from repro.core.predictors import (
    PREDICTORS,
    FirstSuccessorPredictor,
    LastSuccessorPredictor,
    NoopPredictor,
    PrefetchingCache,
    ProbabilityGraphPredictor,
)
from repro.errors import CacheConfigurationError


class TestNoopPredictor:
    def test_predicts_nothing(self):
        predictor = NoopPredictor()
        predictor.update("a")
        assert predictor.predict("a", 5) == []


class TestLastSuccessor:
    def test_tracks_latest(self):
        predictor = LastSuccessorPredictor()
        for key in ["a", "b", "a", "c"]:
            predictor.update(key)
        assert predictor.predict("a", 1) == ["c"]
        assert predictor.predict("b", 1) == ["a"]

    def test_unknown_file(self):
        predictor = LastSuccessorPredictor()
        predictor.update("a")
        assert predictor.predict("a", 1) == []
        assert predictor.predict("ghost", 1) == []

    def test_k_zero(self):
        predictor = LastSuccessorPredictor()
        for key in ["a", "b"]:
            predictor.update(key)
        assert predictor.predict("a", 0) == []


class TestFirstSuccessor:
    def test_never_adapts(self):
        predictor = FirstSuccessorPredictor()
        for key in ["a", "b", "a", "c", "a", "d"]:
            predictor.update(key)
        assert predictor.predict("a", 1) == ["b"]


class TestProbabilityGraph:
    def test_lookahead_window_counts(self):
        predictor = ProbabilityGraphPredictor(lookahead=2, min_chance=0.0)
        for key in ["a", "b", "c"]:
            predictor.update(key)
        # Within lookahead 2 of 'a': b and c.
        assert set(predictor.predict("a", 5)) == {"b", "c"}

    def test_threshold_prunes_rare_followers(self):
        predictor = ProbabilityGraphPredictor(lookahead=1, min_chance=0.5)
        for key in ["a", "b"] * 9 + ["a", "z"]:
            predictor.update(key)
        assert predictor.predict("a", 5) == ["b"]

    def test_self_edges_excluded(self):
        predictor = ProbabilityGraphPredictor(lookahead=2, min_chance=0.0)
        for key in ["a", "a", "b"]:
            predictor.update(key)
        assert "a" not in predictor.predict("a", 5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(CacheConfigurationError):
            ProbabilityGraphPredictor(lookahead=0)
        with pytest.raises(CacheConfigurationError):
            ProbabilityGraphPredictor(min_chance=1.5)

    def test_strongest_first(self):
        predictor = ProbabilityGraphPredictor(lookahead=1, min_chance=0.0)
        for key in ["a", "b", "a", "b", "a", "c"]:
            predictor.update(key)
        assert predictor.predict("a", 2) == ["b", "c"]


class TestRegistry:
    def test_all_constructible(self):
        for name, constructor in PREDICTORS.items():
            predictor = constructor()
            predictor.update("x")
            assert predictor.name == name or predictor.name  # named


class TestPrefetchingCache:
    def test_noop_equals_plain_lru(self):
        from repro.caching.lru import LRUCache

        sequence = [f"f{i % 9}" for i in range(300)]
        prefetching = PrefetchingCache(5, NoopPredictor())
        prefetching.replay(sequence)
        plain = LRUCache(5)
        for key in sequence:
            plain.access(key)
        assert prefetching.demand_fetches == plain.stats.misses
        assert prefetching.prefetches == 0

    def test_last_successor_reduces_fetches_on_chain(self):
        files = [f"f{i}" for i in range(30)]
        sequence = files * 6
        plain = PrefetchingCache(15, NoopPredictor())
        plain.replay(sequence)
        predictive = PrefetchingCache(15, LastSuccessorPredictor(), prefetch_count=1)
        predictive.replay(sequence)
        assert predictive.demand_fetches < plain.demand_fetches

    def test_prefetch_counter(self):
        # Capacity 2 forces b out before the final access to a, so the
        # prediction a->b is non-resident and actually prefetched.
        cache = PrefetchingCache(2, LastSuccessorPredictor(), prefetch_count=1)
        cache.replay(["a", "b", "c", "a"])
        assert cache.prefetches >= 1

    def test_prefetch_on_hit_flag(self):
        quiet = PrefetchingCache(
            10, LastSuccessorPredictor(), prefetch_count=1, prefetch_on_hit=False
        )
        quiet.replay(["a", "b"] * 20)
        # After warm-up everything hits, so prefetching stops.
        noisy = PrefetchingCache(
            10, LastSuccessorPredictor(), prefetch_count=1, prefetch_on_hit=True
        )
        noisy.replay(["a", "b"] * 20)
        assert quiet.prefetches <= noisy.prefetches

    def test_capacity(self):
        cache = PrefetchingCache(4, LastSuccessorPredictor(), prefetch_count=3)
        for i in range(100):
            cache.access(f"f{i % 11}")
        assert len(cache) <= 4
