"""Unit tests for workload-drift detection over windowed telemetry."""

import pytest

from repro.analysis.drift import (
    DriftAlert,
    DriftDetector,
    detect_drift,
    detect_level_shifts,
    drift_rows,
)
from repro.analysis.report import workload_drift_rows
from repro.errors import AnalysisError
from repro.obs import WindowSample, get_collector, set_collector, windowing
from repro.sim.engine import DistributedFileSystem
from repro.traces.events import Trace, TraceEvent


@pytest.fixture(autouse=True)
def _no_leaked_collector():
    assert get_collector() is None
    yield
    set_collector(None)


def phase_change_trace():
    """A hot working set that abruptly becomes cache-hostile.

    50 files under a 250-entry cache (hit ratio ~1), then 5000 files
    (hit ratio 0 until the tail recurs) — a clean mid-trace workload
    shift at event 10,000.
    """
    ids = [f"a{i % 50:04d}" for i in range(10_000)]
    ids += [f"b{i % 5000:04d}" for i in range(10_000)]
    return Trace(
        events=[TraceEvent(file_id=file_id) for file_id in ids],
        name="phase-change",
    )


class TestDriftDetector:
    def test_rejects_bad_parameters(self):
        with pytest.raises(AnalysisError):
            DriftDetector(history=1)
        with pytest.raises(AnalysisError):
            DriftDetector(threshold=0.0)
        with pytest.raises(AnalysisError):
            DriftDetector(alpha=0.0)
        with pytest.raises(AnalysisError):
            DriftDetector(alpha=1.5)
        with pytest.raises(AnalysisError):
            DriftDetector(min_std=0.0)

    def test_no_alerts_during_warmup(self):
        detector = DriftDetector(history=4)
        # Even a wild jump cannot alert before the baseline holds
        # `history` values.
        assert detector.update(0.9) is None
        assert detector.update(0.1) is None
        assert detector.update(0.9) is None

    def test_stationary_series_never_alerts(self):
        detector = DriftDetector(history=4, threshold=4.0)
        for value in [0.5, 0.501, 0.499, 0.5] * 10:
            assert detector.update(value) is None

    def test_zero_mean_baseline_has_bounded_zscore(self):
        # A perfectly flat all-miss phase must not turn the first
        # nonzero value into an astronomically large z-score; the std
        # floor makes the score finite and proportional.
        detector = DriftDetector(history=4, threshold=4.0, alpha=1.0)
        for _ in range(6):
            detector.update(0.0)
        hit = detector.update(0.2)
        assert hit is not None
        zscore, direction = hit
        assert direction == "rise"
        assert zscore == pytest.approx(0.2 / 0.02)

    def test_baseline_mean_none_during_warmup(self):
        detector = DriftDetector(history=4)
        detector.update(0.5)
        assert detector.baseline_mean is None
        for value in [0.5, 0.5, 0.5]:
            detector.update(value)
        assert detector.baseline_mean == pytest.approx(0.5)

    def test_last_smoothed_survives_regime_reset(self):
        detector = DriftDetector(history=4, threshold=4.0, alpha=0.5)
        for _ in range(5):
            detector.update(1.0)
        hit = detector.update(0.0)
        assert hit is not None
        # The EWMA that tripped the test (0.5), not the raw value the
        # detector reset to (0.0).
        assert detector.last_smoothed == pytest.approx(0.5)
        assert detector._ewma == pytest.approx(0.0)

    def test_regime_reset_alerts_once_per_shift(self):
        series = [1.0] * 10 + [0.1] * 10 + [1.0] * 10
        shifts = detect_level_shifts(series, history=4)
        assert [(pos, direction) for pos, _, direction in shifts] == [
            (10, "drop"),
            (20, "rise"),
        ]


class TestDetectLevelShifts:
    def test_single_drop_located_exactly(self):
        shifts = detect_level_shifts([1.0] * 20 + [0.1] * 20, history=4)
        assert len(shifts) == 1
        position, zscore, direction = shifts[0]
        assert position == 20
        assert direction == "drop"
        assert zscore < -4.0

    def test_steady_series_is_empty(self):
        assert detect_level_shifts([0.7] * 40, history=4) == []


class TestDetectDrift:
    def test_flags_injected_workload_shift_at_correct_window(self):
        """The acceptance criterion: a mid-trace shift is flagged at
        the window where it happens, event-addressed."""
        system = DistributedFileSystem(client_capacity=250, group_size=5)
        with windowing(window=1000) as collector:
            system.replay(phase_change_trace())
        alerts = detect_drift(collector.samples, history=4)
        hit_ratio_alerts = [a for a in alerts if a.metric == "hit_ratio"]
        assert hit_ratio_alerts
        first = hit_ratio_alerts[0]
        assert first.index == 10
        assert first.start == 10_000
        assert first.direction == "drop"
        assert first.describe().startswith(
            "hit_ratio collapsed at window 10 (event 10000)"
        )

    def test_skips_sweep_samples(self):
        samples = [
            WindowSample(source="sweep", index=i, hits=0, misses=10, events=10)
            for i in range(20)
        ]
        assert detect_drift(samples, history=4) == []

    def test_skips_none_metric_values(self):
        samples = [
            WindowSample(index=i, start=i * 10, events=10, hits=9, misses=1)
            for i in range(20)
        ]
        for sample in samples:
            sample.entropy = None
        assert detect_drift(samples, metrics=("entropy",), history=4) == []

    def test_alert_table_rows(self):
        alert = DriftAlert(
            metric="hit_ratio",
            index=10,
            start=10_000,
            value=0.1234,
            baseline=0.9876,
            zscore=-13.5,
            direction="drop",
        )
        rows = drift_rows([alert])
        assert rows == [
            {
                "metric": "hit_ratio",
                "window": 10,
                "event": 10_000,
                "direction": "drop",
                "value": "0.1234",
                "baseline": "0.9876",
                "z": "-13.5",
            }
        ]

    def test_alert_round_trips_to_dict(self):
        alert = DriftAlert("entropy", 3, 300, 2.0, 1.0, 5.0, "rise")
        assert alert.to_dict()["direction"] == "rise"
        assert "jumped at window 3" in alert.describe()


class TestWorkloadDriftReport:
    def test_stationary_workloads_report_steady(self):
        rows = workload_drift_rows(
            events=4000, workloads=("server",), window=500, history=4
        )
        assert rows[0] == [
            "workload",
            "windows",
            "metric",
            "window",
            "event",
            "shift",
            "z",
        ]
        body = rows[1:]
        assert body
        assert all(row[0] == "server" for row in body)
        assert body[0][1] == "8"


class TestMetricValue:
    def test_defined_ratios_pass_through(self):
        from repro.analysis.drift import _metric_value

        sample = WindowSample(
            events=100, hits=80, misses=20, store_fetches=10,
            companion_slots=5, speculative_fetches=3, evictions=4,
        )
        assert _metric_value(sample, "hit_ratio") == pytest.approx(0.8)
        assert _metric_value(sample, "eviction_rate") == pytest.approx(0.04)

    def test_undefined_ratios_return_none(self):
        from repro.analysis.drift import _metric_value

        idle = WindowSample(events=0)
        assert _metric_value(idle, "hit_ratio") is None
        assert _metric_value(idle, "eviction_rate") is None
        assert _metric_value(idle, "prefetch_efficiency") is None
        assert _metric_value(idle, "wasted_fetch_share") is None
        # events flowed but no prefetching happened: efficiency undefined
        busy = WindowSample(events=10, hits=10)
        assert _metric_value(busy, "prefetch_efficiency") is None
        assert _metric_value(busy, "wasted_fetch_share") is None


class TestStreamingDriftMonitor:
    @staticmethod
    def samples(ratios, source="serve"):
        out = []
        for index, ratio in enumerate(ratios):
            hits = int(round(ratio * 100))
            out.append(
                WindowSample(
                    source=source,
                    index=index,
                    events=100,
                    hits=hits,
                    misses=100 - hits,
                )
            )
        return out

    def test_observe_alerts_on_level_shift(self):
        from repro.analysis.drift import StreamingDriftMonitor

        monitor = StreamingDriftMonitor(
            metrics=("hit_ratio",), history=8, threshold=4.0
        )
        alerts = []
        for sample in self.samples([0.8] * 12 + [0.1] * 3):
            alerts.extend(monitor.observe(sample))
        assert len(alerts) >= 1
        first = alerts[0]
        assert first.metric == "hit_ratio"
        assert first.direction == "drop"
        assert monitor.alerts == alerts
        assert monitor.samples_seen == 15

    def test_steady_stream_stays_quiet(self):
        from repro.analysis.drift import StreamingDriftMonitor

        monitor = StreamingDriftMonitor(metrics=("hit_ratio",), history=8)
        for sample in self.samples([0.8, 0.81, 0.79, 0.8] * 6):
            assert monitor.observe(sample) == []
        assert monitor.warmed_up()

    def test_warmup_tracking(self):
        from repro.analysis.drift import StreamingDriftMonitor

        monitor = StreamingDriftMonitor(metrics=("hit_ratio",), history=8)
        for sample in self.samples([0.8] * 7):
            monitor.observe(sample)
        assert not monitor.warmed_up()
        monitor.observe(self.samples([0.8] * 9)[8])
        assert monitor.warmed_up()

    def test_ignores_foreign_sources_and_idle_windows(self):
        from repro.analysis.drift import StreamingDriftMonitor

        monitor = StreamingDriftMonitor(metrics=("hit_ratio",), history=8)
        for sample in self.samples([0.9] * 12, source="sweep"):
            assert monitor.observe(sample) == []
        assert monitor.samples_seen == 0
        # idle windows (no events) never feed the baseline either
        warm = self.samples([0.8] * 12)
        for sample in warm:
            monitor.observe(sample)
        idle = WindowSample(source="serve", index=99, events=0)
        assert monitor.observe(idle) == []
        # the zero-hit idle window did not register as a collapse
        assert monitor.alerts == []

    def test_detect_drift_serve_source(self):
        alerts = detect_drift(
            self.samples([0.8] * 12 + [0.05] * 4),
            metrics=("hit_ratio",),
            history=8,
            threshold=4.0,
            sources=("serve",),
        )
        assert alerts and alerts[0].metric == "hit_ratio"
