"""Parallel-vs-serial equivalence for the figure sweeps.

The acceptance bar for the parallel sweep engine: fanning grid points
over worker processes must change nothing — same records, same order,
same values — on a real figure grid.
"""

from repro.experiments import run_fig3, run_fig5

MINI_EVENTS = 2000
MINI_CAPACITIES = (100, 200)
MINI_GROUP_SIZES = (1, 2, 5)


def figure_payload(figure):
    return (
        figure.figure_id,
        figure.title,
        figure.xlabel,
        figure.ylabel,
        figure.notes,
        tuple((series.label, tuple(series.points)) for series in figure.series),
    )


class TestParallelFigures:
    def test_fig3_mini_grid_workers_equivalent(self):
        serial = run_fig3(
            "server",
            events=MINI_EVENTS,
            capacities=MINI_CAPACITIES,
            group_sizes=MINI_GROUP_SIZES,
        )
        parallel = run_fig3(
            "server",
            events=MINI_EVENTS,
            capacities=MINI_CAPACITIES,
            group_sizes=MINI_GROUP_SIZES,
            workers=4,
        )
        assert figure_payload(parallel) == figure_payload(serial)

    def test_fig5_workers_equivalent(self):
        serial = run_fig5("server", events=MINI_EVENTS, list_sizes=(1, 2, 4))
        parallel = run_fig5(
            "server", events=MINI_EVENTS, list_sizes=(1, 2, 4), workers=3
        )
        assert figure_payload(parallel) == figure_payload(serial)

    def test_progress_reports_elapsed(self):
        seen = []
        run_fig3(
            "server",
            events=MINI_EVENTS,
            capacities=MINI_CAPACITIES,
            group_sizes=(1, 2),
            progress=lambda index, total, params, elapsed: seen.append(
                (index, total, elapsed)
            ),
        )
        assert [entry[0] for entry in seen] == [0, 1, 2, 3]
        assert all(entry[1] == 4 for entry in seen)
        assert all(entry[2] >= 0.0 for entry in seen)
