"""Tests for the aggregating-cache daemon (``repro serve``) and the
multi-process load driver (``repro slam``).

Every daemon here binds port 0 (the ephemeral-port contract) and is
closed via the context manager, so parallel test runs never collide on
an address and no test leaks a socket.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.obs.timeseries import MetricsServer
from repro.serve import (
    CacheDaemon,
    ScenarioError,
    ServeConnection,
    SlamError,
    load_scenario,
    percentile,
    run_slam,
)
from repro.serve import schema as wire
from repro.serve.client import make_shards
from repro.serve.scenario import Scenario, scenario_from_dict
from repro.workloads.synthetic import make_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIOS = REPO_ROOT / "scenarios"


def tiny_scenario(**overrides) -> Scenario:
    scenario = Scenario(capacity=100, group_size=4, events=500, seed=3)
    for key, value in overrides.items():
        setattr(scenario, key, value)
    return scenario


# -- scenario loading --------------------------------------------------------


class TestScenario:
    def test_empty_object_is_valid(self):
        scenario = scenario_from_dict({})
        assert scenario.port == 0
        assert scenario.capacity == 300
        assert scenario.journal_enabled

    def test_repo_scenarios_load(self):
        for name in ("smoke.json", "paper-server.json"):
            scenario = load_scenario(SCENARIOS / name)
            assert scenario.port == 0, f"{name} must keep the port-0 contract"
            assert scenario.build_cache().capacity == scenario.capacity

    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="group_sze"):
            scenario_from_dict({"cache": {"group_sze": 5}})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown top-level"):
            scenario_from_dict({"cachee": {}})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ScenarioError, match="must be an integer"):
            scenario_from_dict({"server": {"port": True}})

    def test_bad_schema_rejected(self):
        with pytest.raises(ScenarioError, match="unsupported schema"):
            scenario_from_dict({"schema": "repro.scenario/9"})

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ScenarioError, match="port"):
            scenario_from_dict({"server": {"port": 70000}})
        with pytest.raises(ScenarioError, match="capacity"):
            scenario_from_dict({"cache": {"capacity": 0}})

    def test_invalid_json_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_scenario(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "absent.json")

    def test_round_trip_to_dict(self):
        scenario = scenario_from_dict({"name": "x", "cache": {"capacity": 42}})
        again = scenario_from_dict(scenario.to_dict())
        assert again.capacity == 42
        assert again.name == "x"


# -- wire schema -------------------------------------------------------------


class TestWire:
    def test_parse_body_rejects_non_object(self):
        with pytest.raises(wire.WireError, match="JSON object"):
            wire.parse_body(b"[1, 2]")

    def test_parse_body_rejects_empty(self):
        with pytest.raises(wire.WireError, match="empty body"):
            wire.parse_body(b"")

    def test_parse_open_requires_file(self):
        with pytest.raises(wire.WireError, match="'file'"):
            wire.parse_open({})
        with pytest.raises(wire.WireError, match="non-empty string"):
            wire.parse_open({"file": ""})

    def test_parse_fetch_validates_files(self):
        with pytest.raises(wire.WireError, match="'files'"):
            wire.parse_fetch({"files": []})
        with pytest.raises(wire.WireError, match="non-empty string"):
            wire.parse_fetch({"files": ["ok", 7]})
        files, client, detail = wire.parse_fetch(
            {"files": ["a", "b"], "client": "w1", "detail": True}
        )
        assert files == ["a", "b"] and client == "w1" and detail is True

    def test_journal_entry_round_trip(self):
        assert wire.decode_journal_entry(wire.journal_entry("f1")) == ("f1", False)
        assert wire.decode_journal_entry(
            wire.journal_entry("f1", invalidate=True)
        ) == ("f1", True)

    def test_validate_stats_requires_schema(self):
        with pytest.raises(wire.WireError, match="schema"):
            wire.validate_stats({"cache": {}})


# -- percentile math ---------------------------------------------------------


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_interpolation(self):
        values = [0.0, 10.0]
        assert percentile(values, 0.5) == 5.0
        assert percentile(list(range(101)), 0.95) == 95.0

    def test_out_of_range_q(self):
        with pytest.raises(SlamError):
            percentile([1.0], 1.5)


# -- sharding ----------------------------------------------------------------


class TestShards:
    def test_contiguous_cover(self):
        shards = make_shards([f"f{i}" for i in range(10)], 3)
        flat = [fid for shard in shards for fid in shard[1]]
        assert flat == [f"f{i}" for i in range(10)]
        assert len(shards) == 3

    def test_small_trace_drops_empty_shards(self):
        shards = make_shards(["a", "b"], 8)
        assert len(shards) == 2

    def test_rejects_bad_ctrace_path(self, tmp_path):
        bogus = tmp_path / "x.ctrace"
        bogus.write_bytes(b"not a ctrace")
        with pytest.raises(SlamError, match="not a valid"):
            make_shards(bogus, 2)


# -- daemon endpoints --------------------------------------------------------


class TestDaemon:
    def test_two_daemons_bind_distinct_ephemeral_ports(self):
        with CacheDaemon(tiny_scenario()) as one, CacheDaemon(tiny_scenario()) as two:
            assert one.port != 0 and two.port != 0
            assert one.port != two.port

    def test_open_miss_ships_group_then_hit(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            _status, miss = conn.request("POST", "/open", {"file": "f1"})
            assert miss["hit"] is False
            assert miss["group"][0] == "f1"
            assert miss["seq"] == 1
            _status, hit = conn.request("POST", "/open", {"file": "f1"})
            assert hit["hit"] is True
            assert hit["group"] == []

    def test_fetch_matches_in_process_cache(self):
        scenario = tiny_scenario()
        trace = list(make_workload("server", 800, 5).file_ids())
        local = scenario.build_cache()
        local_hits = sum(1 for fid in trace if local.access(fid))
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            served_hits = 0
            for low in range(0, len(trace), 32):
                body = conn.fetch(trace[low : low + 32])
                served_hits += body["hits"]
            stats = conn.stats()
        assert served_hits == local_hits
        assert stats["cache"]["hits"] == local_hits
        assert stats["accesses"] == len(trace)

    def test_fetch_detail_results(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            _status, body = conn.request(
                "POST", "/fetch", {"files": ["a", "a", "b"], "detail": True}
            )
            assert body["results"] == [False, True, False]
            assert body["hits"] == 1

    def test_invalidate_resident_then_404(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.request("POST", "/open", {"file": "f1"})
            _status, body = conn.request("POST", "/invalidate", {"file": "f1"})
            assert body == {"invalidated": True, "file": "f1"}
            status, error = conn.request(
                "POST", "/invalidate", {"file": "f1"}, expect_error=True
            )
            assert status == 404
            assert error["status"] == 404 and "not resident" in error["error"]

    def test_malformed_json_is_structured_400(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn._connection().request(
                "POST", "/open", body=b"{oops", headers={"Content-Type": "application/json"}
            )
            response = conn._connection().getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["status"] == 400 and "JSON" in payload["error"]

    def test_missing_field_is_400(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            status, body = conn.request("POST", "/open", {"client": "x"}, expect_error=True)
            assert status == 400
            assert "file" in body["error"]

    def test_unknown_path_is_404_wrong_method_is_405(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            status, body = conn.request("GET", "/nope", expect_error=True)
            assert status == 404 and body["status"] == 404
            status, body = conn.request("GET", "/open", expect_error=True)
            assert status == 405 and "does not accept" in body["error"]

    def test_stats_shape_and_error_counter(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.request("POST", "/open", {"file": "f1"})
            conn.request("GET", "/nope", expect_error=True)
            stats = conn.stats()
        assert stats["schema"] == wire.SERVE_SCHEMA
        assert stats["errors"] == 1
        assert stats["scenario"]["cache"]["capacity"] == 100
        assert stats["journal"]["enabled"] and stats["journal"]["events"] == 1
        assert stats["latency_ns"]["count"] >= 1

    def test_metrics_prometheus_text_parses(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.fetch(["a", "b", "a"])
            _status, body = conn.request("GET", "/metrics")
        lines = body["text"].splitlines()
        assert lines[-1] == "# EOF"
        declared = set()
        for line in lines:
            if line.startswith("# TYPE "):
                _hash, _type, name, kind = line.split()
                assert kind in ("counter", "gauge")
                declared.add(name)
            elif line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                assert name in declared
                float(value)
        assert "repro_serve_hits_total" in declared

    def test_journal_round_trip_reproduces_counters(self):
        scenario = tiny_scenario()
        trace = list(make_workload("users", 600, 11).file_ids())
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            for low in range(0, len(trace), 25):
                conn.fetch(trace[low : low + 25])
            conn.request("POST", "/invalidate", {"file": trace[-1]})
            _status, journal = conn.request("GET", "/journal")
            stats = conn.stats()
        assert not journal["truncated"]
        fresh = scenario.build_cache()
        wire.replay_journal(fresh, journal["entries"])
        local = fresh.stats_dict()
        assert local["hits"] == stats["cache"]["hits"]
        assert local["misses"] == stats["cache"]["misses"]
        assert local["evictions"] == stats["cache"]["evictions"]

    def test_journal_disabled_404(self):
        with CacheDaemon(tiny_scenario(journal_enabled=False)) as daemon:
            with ServeConnection(daemon.url) as conn:
                status, body = conn.request("GET", "/journal", expect_error=True)
        assert status == 404 and "disabled" in body["error"]

    def test_shutdown_endpoint_wakes_stop_event(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            _status, body = conn.request("POST", "/shutdown")
            assert body == {"stopping": True}
            assert daemon._stop.is_set()

    def test_shutdown_endpoint_403_when_disabled(self):
        with CacheDaemon(tiny_scenario(allow_shutdown=False)) as daemon:
            with ServeConnection(daemon.url) as conn:
                status, body = conn.request("POST", "/shutdown", expect_error=True)
        assert status == 403 and body["status"] == 403

    def test_close_is_idempotent_and_releases_port(self):
        daemon = CacheDaemon(tiny_scenario()).start()
        port = daemon.port
        daemon.close()
        daemon.close()
        # the port must be rebindable immediately (socket released)
        rebind = CacheDaemon(tiny_scenario(), port=port)
        rebind.close()

    def test_never_started_daemon_still_closes(self):
        daemon = CacheDaemon(tiny_scenario())
        daemon.close()  # must not hang in shutdown()


# -- slam driver -------------------------------------------------------------


class TestSlam:
    def test_slam_single_worker_inline(self):
        scenario = tiny_scenario()
        trace = list(make_workload("server", 400, 9).file_ids())
        with CacheDaemon(scenario) as daemon:
            report = run_slam(daemon.url, trace, workers=1, batch=10)
        assert report.events == 400
        assert report.requests == 40
        assert report.errors == 0
        assert report.p50_ms >= 0.0
        assert 0.0 <= report.served_hit_ratio <= 1.0

    def test_slam_multiprocess_matches_journal_replay(self):
        scenario = tiny_scenario()
        trace = list(make_workload("server", 600, 13).file_ids())
        with CacheDaemon(scenario) as daemon:
            report = run_slam(daemon.url, trace, workers=2, batch=16)
            with ServeConnection(daemon.url) as conn:
                _status, journal = conn.request("GET", "/journal")
                stats = conn.stats()
        assert report.events == 600
        assert report.workers == 2
        fresh = scenario.build_cache()
        wire.replay_journal(fresh, journal["entries"])
        assert fresh.stats_dict()["hits"] == stats["cache"]["hits"]
        assert report.client_hits == stats["cache"]["hits"]

    def test_slam_delta_isolates_this_run(self):
        scenario = tiny_scenario()
        with CacheDaemon(scenario) as daemon:
            with ServeConnection(daemon.url) as conn:
                conn.fetch(["warm1", "warm2"])  # pre-existing traffic
            report = run_slam(daemon.url, ["a", "a", "a", "a"], workers=1, batch=2)
        assert report.delta["accesses"] == 4
        assert report.delta["hits"] == 3  # first "a" misses, rest hit
        assert report.served_hit_ratio == 0.75

    def test_slam_report_json_schema(self, tmp_path):
        from repro.serve.client import write_report

        scenario = tiny_scenario()
        with CacheDaemon(scenario) as daemon:
            report = run_slam(daemon.url, ["a", "b", "a"], workers=1, batch=2)
        out = write_report(report, tmp_path / "report.json")
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == wire.SLAM_SCHEMA
        assert payload["events"] == 3
        assert set(payload["latency_ms"]) == {"p50", "p95", "p99", "mean"}

    def test_slam_ctrace_source(self, tmp_path):
        from repro.traces.columnar import write_columnar
        from repro.traces.events import Trace, TraceEvent

        trace = list(make_workload("server", 300, 17).file_ids())
        artifact = tmp_path / "slam.ctrace"
        write_columnar(
            Trace(events=[TraceEvent(file_id=fid) for fid in trace]), artifact
        )
        shards = make_shards(artifact, 3)
        assert [s[0] for s in shards] == ["ctrace"] * 3
        scenario = tiny_scenario()
        with CacheDaemon(scenario) as daemon:
            report = run_slam(daemon.url, artifact, workers=2, batch=16)
            serial = scenario.build_cache()
            with ServeConnection(daemon.url) as conn:
                _status, journal = conn.request("GET", "/journal")
                stats = conn.stats()
        assert report.events == 300
        wire.replay_journal(serial, journal["entries"])
        assert serial.stats_dict()["hits"] == stats["cache"]["hits"]

    def test_retry_once_on_connection_reset(self, monkeypatch):
        with CacheDaemon(tiny_scenario()) as daemon:
            conn = ServeConnection(daemon.url)
            real_once = conn._once
            calls = {"n": 0}

            def flaky(method, path, body):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ConnectionResetError("peer reset")
                return real_once(method, path, body)

            monkeypatch.setattr(conn, "_once", flaky)
            body = conn.fetch(["f1"])
            conn.close()
        assert body["count"] == 1
        assert conn.retries == 1
        assert calls["n"] == 2

    def test_second_reset_raises(self, monkeypatch):
        with CacheDaemon(tiny_scenario()) as daemon:
            conn = ServeConnection(daemon.url)

            def always_reset(method, path, body):
                raise ConnectionResetError("peer reset")

            monkeypatch.setattr(conn, "_once", always_reset)
            with pytest.raises(SlamError, match="failed after retry"):
                conn.fetch(["f1"])
            conn.close()
        assert conn.retries == 1

    def test_dead_daemon_raises_slam_error(self):
        daemon = CacheDaemon(tiny_scenario()).start()
        url = daemon.url
        daemon.close()
        with pytest.raises(SlamError):
            run_slam(url, ["a", "b"], workers=1, batch=1)


# -- process lifecycle -------------------------------------------------------


def _spawn_daemon(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    port_file = tmp_path / "port"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            str(SCENARIOS / "smoke.json"),
            "--port-file", str(port_file), *extra,
        ],
        env=env,
        cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died early: {process.communicate()[0]}"
            )
        if port_file.exists() and port_file.read_text().strip():
            return process, int(port_file.read_text().strip())
        time.sleep(0.05)
    process.kill()
    raise AssertionError("daemon never announced its port")


class TestProcessLifecycle:
    def test_sigterm_exits_zero_and_releases_port(self, tmp_path):
        process, port = _spawn_daemon(tmp_path)
        with ServeConnection(f"http://127.0.0.1:{port}") as conn:
            _status, body = conn.request("GET", "/healthz")
            assert body["ok"] is True
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=10) == 0
        output = process.communicate()[0]
        assert "socket released" in output
        # no orphaned socket: the port is immediately rebindable
        rebind = CacheDaemon(tiny_scenario(), port=port)
        rebind.close()

    def test_sigint_exits_zero(self, tmp_path):
        process, _port = _spawn_daemon(tmp_path)
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=10) == 0

    def test_shutdown_endpoint_stops_the_process(self, tmp_path):
        process, port = _spawn_daemon(tmp_path)
        with ServeConnection(f"http://127.0.0.1:{port}") as conn:
            conn.request("POST", "/shutdown")
        assert process.wait(timeout=10) == 0


# -- MetricsServer port-0 contract ------------------------------------------


class TestMetricsServerLifecycle:
    def test_binds_ephemeral_port_and_reports_it(self):
        with MetricsServer(lambda: "# EOF\n") as server:
            assert server.port != 0
            with MetricsServer(lambda: "# EOF\n") as other:
                assert other.port != server.port

    def test_close_is_idempotent(self):
        server = MetricsServer(lambda: "# EOF\n")
        server.start()
        server.close()
        server.close()

    def test_never_started_close_does_not_hang(self):
        server = MetricsServer(lambda: "# EOF\n")
        server.close()


# -- CLI registration --------------------------------------------------------


class TestCli:
    def test_serve_and_slam_registered(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "scenarios/smoke.json"])
        assert callable(args.handler)
        args = parser.parse_args(
            ["slam", "--url", "http://127.0.0.1:1", "--workers", "3"]
        )
        assert callable(args.handler) and args.workers == 3

    def test_slam_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["slam", "--url", "http://x:1", "--workload", "cray"]
            )

    def test_slam_cli_end_to_end(self, capsys, tmp_path):
        with CacheDaemon(tiny_scenario()) as daemon:
            code = main(
                [
                    "slam", "--url", daemon.url, "--workload", "server",
                    "--events", "300", "--workers", "1", "--batch", "10",
                    "--report", str(tmp_path / "report.json"),
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "events replayed" in out and "300" in out
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["schema"] == wire.SLAM_SCHEMA
