"""Tests for the aggregating-cache daemon (``repro serve``) and the
multi-process load driver (``repro slam``).

Every daemon here binds port 0 (the ephemeral-port contract) and is
closed via the context manager, so parallel test runs never collide on
an address and no test leaks a socket.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.obs.timeseries import MetricsServer
from repro.serve import (
    CacheDaemon,
    ScenarioError,
    ServeConnection,
    SlamError,
    SlamReport,
    load_scenario,
    percentile,
    run_slam,
)
from repro.serve import schema as wire
from repro.serve.client import make_shards
from repro.serve.scenario import Scenario, scenario_from_dict
from repro.workloads.synthetic import make_workload

REPO_ROOT = Path(__file__).resolve().parent.parent
SCENARIOS = REPO_ROOT / "scenarios"


def tiny_scenario(**overrides) -> Scenario:
    scenario = Scenario(capacity=100, group_size=4, events=500, seed=3)
    for key, value in overrides.items():
        setattr(scenario, key, value)
    return scenario


# -- scenario loading --------------------------------------------------------


class TestScenario:
    def test_empty_object_is_valid(self):
        scenario = scenario_from_dict({})
        assert scenario.port == 0
        assert scenario.capacity == 300
        assert scenario.journal_enabled

    def test_repo_scenarios_load(self):
        for name in ("smoke.json", "paper-server.json"):
            scenario = load_scenario(SCENARIOS / name)
            assert scenario.port == 0, f"{name} must keep the port-0 contract"
            assert scenario.build_cache().capacity == scenario.capacity

    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="group_sze"):
            scenario_from_dict({"cache": {"group_sze": 5}})

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown top-level"):
            scenario_from_dict({"cachee": {}})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ScenarioError, match="must be an integer"):
            scenario_from_dict({"server": {"port": True}})

    def test_bad_schema_rejected(self):
        with pytest.raises(ScenarioError, match="unsupported schema"):
            scenario_from_dict({"schema": "repro.scenario/9"})

    def test_out_of_range_values_rejected(self):
        with pytest.raises(ScenarioError, match="port"):
            scenario_from_dict({"server": {"port": 70000}})
        with pytest.raises(ScenarioError, match="capacity"):
            scenario_from_dict({"cache": {"capacity": 0}})

    def test_invalid_json_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(ScenarioError, match="invalid JSON"):
            load_scenario(bad)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScenarioError, match="cannot read"):
            load_scenario(tmp_path / "absent.json")

    def test_round_trip_to_dict(self):
        scenario = scenario_from_dict({"name": "x", "cache": {"capacity": 42}})
        again = scenario_from_dict(scenario.to_dict())
        assert again.capacity == 42
        assert again.name == "x"


# -- wire schema -------------------------------------------------------------


class TestWire:
    def test_parse_body_rejects_non_object(self):
        with pytest.raises(wire.WireError, match="JSON object"):
            wire.parse_body(b"[1, 2]")

    def test_parse_body_rejects_empty(self):
        with pytest.raises(wire.WireError, match="empty body"):
            wire.parse_body(b"")

    def test_parse_open_requires_file(self):
        with pytest.raises(wire.WireError, match="'file'"):
            wire.parse_open({})
        with pytest.raises(wire.WireError, match="non-empty string"):
            wire.parse_open({"file": ""})

    def test_parse_fetch_validates_files(self):
        with pytest.raises(wire.WireError, match="'files'"):
            wire.parse_fetch({"files": []})
        with pytest.raises(wire.WireError, match="non-empty string"):
            wire.parse_fetch({"files": ["ok", 7]})
        files, client, detail = wire.parse_fetch(
            {"files": ["a", "b"], "client": "w1", "detail": True}
        )
        assert files == ["a", "b"] and client == "w1" and detail is True

    def test_journal_entry_round_trip(self):
        assert wire.decode_journal_entry(wire.journal_entry("f1")) == ("f1", False)
        assert wire.decode_journal_entry(
            wire.journal_entry("f1", invalidate=True)
        ) == ("f1", True)

    def test_validate_stats_requires_schema(self):
        with pytest.raises(wire.WireError, match="schema"):
            wire.validate_stats({"cache": {}})


# -- percentile math ---------------------------------------------------------


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_interpolation(self):
        values = [0.0, 10.0]
        assert percentile(values, 0.5) == 5.0
        assert percentile(list(range(101)), 0.95) == 95.0

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_shared_with_obs(self):
        # One implementation: repro.serve re-exports obs.quantiles.
        from repro.obs.quantiles import percentile as obs_percentile

        assert percentile is obs_percentile


# -- sharding ----------------------------------------------------------------


class TestShards:
    def test_contiguous_cover(self):
        shards = make_shards([f"f{i}" for i in range(10)], 3)
        flat = [fid for shard in shards for fid in shard[1]]
        assert flat == [f"f{i}" for i in range(10)]
        assert len(shards) == 3

    def test_small_trace_drops_empty_shards(self):
        shards = make_shards(["a", "b"], 8)
        assert len(shards) == 2

    def test_rejects_bad_ctrace_path(self, tmp_path):
        bogus = tmp_path / "x.ctrace"
        bogus.write_bytes(b"not a ctrace")
        with pytest.raises(SlamError, match="not a valid"):
            make_shards(bogus, 2)


# -- daemon endpoints --------------------------------------------------------


class TestDaemon:
    def test_two_daemons_bind_distinct_ephemeral_ports(self):
        with CacheDaemon(tiny_scenario()) as one, CacheDaemon(tiny_scenario()) as two:
            assert one.port != 0 and two.port != 0
            assert one.port != two.port

    def test_open_miss_ships_group_then_hit(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            _status, miss = conn.request("POST", "/open", {"file": "f1"})
            assert miss["hit"] is False
            assert miss["group"][0] == "f1"
            assert miss["seq"] == 1
            _status, hit = conn.request("POST", "/open", {"file": "f1"})
            assert hit["hit"] is True
            assert hit["group"] == []

    def test_fetch_matches_in_process_cache(self):
        scenario = tiny_scenario()
        trace = list(make_workload("server", 800, 5).file_ids())
        local = scenario.build_cache()
        local_hits = sum(1 for fid in trace if local.access(fid))
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            served_hits = 0
            for low in range(0, len(trace), 32):
                body = conn.fetch(trace[low : low + 32])
                served_hits += body["hits"]
            stats = conn.stats()
        assert served_hits == local_hits
        assert stats["cache"]["hits"] == local_hits
        assert stats["accesses"] == len(trace)

    def test_fetch_detail_results(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            _status, body = conn.request(
                "POST", "/fetch", {"files": ["a", "a", "b"], "detail": True}
            )
            assert body["results"] == [False, True, False]
            assert body["hits"] == 1

    def test_invalidate_resident_then_404(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.request("POST", "/open", {"file": "f1"})
            _status, body = conn.request("POST", "/invalidate", {"file": "f1"})
            assert body == {"invalidated": True, "file": "f1"}
            status, error = conn.request(
                "POST", "/invalidate", {"file": "f1"}, expect_error=True
            )
            assert status == 404
            assert error["status"] == 404 and "not resident" in error["error"]

    def test_malformed_json_is_structured_400(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn._connection().request(
                "POST", "/open", body=b"{oops", headers={"Content-Type": "application/json"}
            )
            response = conn._connection().getresponse()
            payload = json.loads(response.read())
            assert response.status == 400
            assert payload["status"] == 400 and "JSON" in payload["error"]

    def test_missing_field_is_400(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            status, body = conn.request("POST", "/open", {"client": "x"}, expect_error=True)
            assert status == 400
            assert "file" in body["error"]

    def test_unknown_path_is_404_wrong_method_is_405(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            status, body = conn.request("GET", "/nope", expect_error=True)
            assert status == 404 and body["status"] == 404
            status, body = conn.request("GET", "/open", expect_error=True)
            assert status == 405 and "does not accept" in body["error"]

    def test_stats_shape_and_error_counter(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.request("POST", "/open", {"file": "f1"})
            conn.request("GET", "/nope", expect_error=True)
            stats = conn.stats()
        assert stats["schema"] == wire.SERVE_SCHEMA
        assert stats["errors"] == 1
        assert stats["scenario"]["cache"]["capacity"] == 100
        assert stats["journal"]["enabled"] and stats["journal"]["events"] == 1
        assert stats["latency_ns"]["count"] >= 1

    def test_metrics_prometheus_text_parses(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.fetch(["a", "b", "a"])
            _status, body = conn.request("GET", "/metrics")
        lines = body["text"].splitlines()
        assert lines[-1] == "# EOF"
        declared = set()
        for line in lines:
            if line.startswith("# TYPE "):
                _hash, _type, name, kind = line.split()
                assert kind in ("counter", "gauge")
                declared.add(name)
            elif line and not line.startswith("#"):
                name, value = line.rsplit(" ", 1)
                assert name in declared
                float(value)
        assert "repro_serve_hits_total" in declared

    def test_journal_round_trip_reproduces_counters(self):
        scenario = tiny_scenario()
        trace = list(make_workload("users", 600, 11).file_ids())
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            for low in range(0, len(trace), 25):
                conn.fetch(trace[low : low + 25])
            conn.request("POST", "/invalidate", {"file": trace[-1]})
            _status, journal = conn.request("GET", "/journal")
            stats = conn.stats()
        assert not journal["truncated"]
        fresh = scenario.build_cache()
        wire.replay_journal(fresh, journal["entries"])
        local = fresh.stats_dict()
        assert local["hits"] == stats["cache"]["hits"]
        assert local["misses"] == stats["cache"]["misses"]
        assert local["evictions"] == stats["cache"]["evictions"]

    def test_journal_disabled_404(self):
        with CacheDaemon(tiny_scenario(journal_enabled=False)) as daemon:
            with ServeConnection(daemon.url) as conn:
                status, body = conn.request("GET", "/journal", expect_error=True)
        assert status == 404 and "disabled" in body["error"]

    def test_shutdown_endpoint_wakes_stop_event(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            _status, body = conn.request("POST", "/shutdown")
            assert body == {"stopping": True}
            assert daemon._stop.is_set()

    def test_shutdown_endpoint_403_when_disabled(self):
        with CacheDaemon(tiny_scenario(allow_shutdown=False)) as daemon:
            with ServeConnection(daemon.url) as conn:
                status, body = conn.request("POST", "/shutdown", expect_error=True)
        assert status == 403 and body["status"] == 403

    def test_close_is_idempotent_and_releases_port(self):
        daemon = CacheDaemon(tiny_scenario()).start()
        port = daemon.port
        daemon.close()
        daemon.close()
        # the port must be rebindable immediately (socket released)
        rebind = CacheDaemon(tiny_scenario(), port=port)
        rebind.close()

    def test_never_started_daemon_still_closes(self):
        daemon = CacheDaemon(tiny_scenario())
        daemon.close()  # must not hang in shutdown()


# -- slam driver -------------------------------------------------------------


class TestSlam:
    def test_slam_single_worker_inline(self):
        scenario = tiny_scenario()
        trace = list(make_workload("server", 400, 9).file_ids())
        with CacheDaemon(scenario) as daemon:
            report = run_slam(daemon.url, trace, workers=1, batch=10)
        assert report.events == 400
        assert report.requests == 40
        assert report.errors == 0
        assert report.p50_ms >= 0.0
        assert 0.0 <= report.served_hit_ratio <= 1.0

    def test_slam_multiprocess_matches_journal_replay(self):
        scenario = tiny_scenario()
        trace = list(make_workload("server", 600, 13).file_ids())
        with CacheDaemon(scenario) as daemon:
            report = run_slam(daemon.url, trace, workers=2, batch=16)
            with ServeConnection(daemon.url) as conn:
                _status, journal = conn.request("GET", "/journal")
                stats = conn.stats()
        assert report.events == 600
        assert report.workers == 2
        fresh = scenario.build_cache()
        wire.replay_journal(fresh, journal["entries"])
        assert fresh.stats_dict()["hits"] == stats["cache"]["hits"]
        assert report.client_hits == stats["cache"]["hits"]

    def test_slam_delta_isolates_this_run(self):
        scenario = tiny_scenario()
        with CacheDaemon(scenario) as daemon:
            with ServeConnection(daemon.url) as conn:
                conn.fetch(["warm1", "warm2"])  # pre-existing traffic
            report = run_slam(daemon.url, ["a", "a", "a", "a"], workers=1, batch=2)
        assert report.delta["accesses"] == 4
        assert report.delta["hits"] == 3  # first "a" misses, rest hit
        assert report.served_hit_ratio == 0.75

    def test_slam_report_json_schema(self, tmp_path):
        from repro.serve.client import write_report

        scenario = tiny_scenario()
        with CacheDaemon(scenario) as daemon:
            report = run_slam(daemon.url, ["a", "b", "a"], workers=1, batch=2)
        out = write_report(report, tmp_path / "report.json")
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["schema"] == wire.SLAM_SCHEMA
        assert payload["events"] == 3
        assert set(payload["latency_ms"]) == {"p50", "p95", "p99", "mean"}

    def test_slam_ctrace_source(self, tmp_path):
        from repro.traces.columnar import write_columnar
        from repro.traces.events import Trace, TraceEvent

        trace = list(make_workload("server", 300, 17).file_ids())
        artifact = tmp_path / "slam.ctrace"
        write_columnar(
            Trace(events=[TraceEvent(file_id=fid) for fid in trace]), artifact
        )
        shards = make_shards(artifact, 3)
        assert [s[0] for s in shards] == ["ctrace"] * 3
        scenario = tiny_scenario()
        with CacheDaemon(scenario) as daemon:
            report = run_slam(daemon.url, artifact, workers=2, batch=16)
            serial = scenario.build_cache()
            with ServeConnection(daemon.url) as conn:
                _status, journal = conn.request("GET", "/journal")
                stats = conn.stats()
        assert report.events == 300
        wire.replay_journal(serial, journal["entries"])
        assert serial.stats_dict()["hits"] == stats["cache"]["hits"]

    def test_retry_once_on_connection_reset(self, monkeypatch):
        with CacheDaemon(tiny_scenario()) as daemon:
            conn = ServeConnection(daemon.url)
            real_once = conn._once
            calls = {"n": 0}

            def flaky(method, path, body, headers=None):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise ConnectionResetError("peer reset")
                return real_once(method, path, body, headers)

            monkeypatch.setattr(conn, "_once", flaky)
            body = conn.fetch(["f1"])
            conn.close()
        assert body["count"] == 1
        assert conn.retries == 1
        assert calls["n"] == 2

    def test_second_reset_raises(self, monkeypatch):
        with CacheDaemon(tiny_scenario()) as daemon:
            conn = ServeConnection(daemon.url)

            def always_reset(method, path, body, headers=None):
                raise ConnectionResetError("peer reset")

            monkeypatch.setattr(conn, "_once", always_reset)
            with pytest.raises(SlamError, match="failed after retry"):
                conn.fetch(["f1"])
            conn.close()
        assert conn.retries == 1

    def test_dead_daemon_raises_slam_error(self):
        daemon = CacheDaemon(tiny_scenario()).start()
        url = daemon.url
        daemon.close()
        with pytest.raises(SlamError):
            run_slam(url, ["a", "b"], workers=1, batch=1)


# -- process lifecycle -------------------------------------------------------


def _spawn_daemon(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    port_file = tmp_path / "port"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            str(SCENARIOS / "smoke.json"),
            "--port-file", str(port_file), *extra,
        ],
        env=env,
        cwd=str(REPO_ROOT),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 20
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError(
                f"daemon died early: {process.communicate()[0]}"
            )
        if port_file.exists() and port_file.read_text().strip():
            return process, int(port_file.read_text().strip())
        time.sleep(0.05)
    process.kill()
    raise AssertionError("daemon never announced its port")


class TestProcessLifecycle:
    def test_sigterm_exits_zero_and_releases_port(self, tmp_path):
        process, port = _spawn_daemon(tmp_path)
        with ServeConnection(f"http://127.0.0.1:{port}") as conn:
            _status, body = conn.request("GET", "/healthz")
            assert body["ok"] is True
        process.send_signal(signal.SIGTERM)
        assert process.wait(timeout=10) == 0
        output = process.communicate()[0]
        assert "socket released" in output
        # no orphaned socket: the port is immediately rebindable
        rebind = CacheDaemon(tiny_scenario(), port=port)
        rebind.close()

    def test_sigint_exits_zero(self, tmp_path):
        process, _port = _spawn_daemon(tmp_path)
        process.send_signal(signal.SIGINT)
        assert process.wait(timeout=10) == 0

    def test_shutdown_endpoint_stops_the_process(self, tmp_path):
        process, port = _spawn_daemon(tmp_path)
        with ServeConnection(f"http://127.0.0.1:{port}") as conn:
            conn.request("POST", "/shutdown")
        assert process.wait(timeout=10) == 0


# -- MetricsServer port-0 contract ------------------------------------------


class TestMetricsServerLifecycle:
    def test_binds_ephemeral_port_and_reports_it(self):
        with MetricsServer(lambda: "# EOF\n") as server:
            assert server.port != 0
            with MetricsServer(lambda: "# EOF\n") as other:
                assert other.port != server.port

    def test_close_is_idempotent(self):
        server = MetricsServer(lambda: "# EOF\n")
        server.start()
        server.close()
        server.close()

    def test_never_started_close_does_not_hang(self):
        server = MetricsServer(lambda: "# EOF\n")
        server.close()


# -- CLI registration --------------------------------------------------------


class TestCli:
    def test_serve_and_slam_registered(self):
        parser = build_parser()
        args = parser.parse_args(["serve", "scenarios/smoke.json"])
        assert callable(args.handler)
        args = parser.parse_args(
            ["slam", "--url", "http://127.0.0.1:1", "--workers", "3"]
        )
        assert callable(args.handler) and args.workers == 3

    def test_slam_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["slam", "--url", "http://x:1", "--workload", "cray"]
            )

    def test_slam_cli_end_to_end(self, capsys, tmp_path):
        with CacheDaemon(tiny_scenario()) as daemon:
            code = main(
                [
                    "slam", "--url", daemon.url, "--workload", "server",
                    "--events", "300", "--workers", "1", "--batch", "10",
                    "--report", str(tmp_path / "report.json"),
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "events replayed" in out and "300" in out
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["schema"] == wire.SLAM_SCHEMA

# -- latency ring percentile edge cases --------------------------------------


class TestLatencyRing:
    def test_empty_ring_reports_zeros(self):
        from repro.serve.server import LatencyRing

        summary = LatencyRing().summary()
        assert summary["count"] == 0 and summary["dropped"] == 0
        assert summary["mean_ns"] == 0.0 and summary["window"] == 0
        assert summary["p50_ns"] == summary["p95_ns"] == summary["p99_ns"] == 0.0

    def test_single_sample_is_every_percentile(self):
        from repro.serve.server import LatencyRing

        ring = LatencyRing()
        ring.observe(1234)
        summary = ring.summary()
        assert summary["count"] == 1 and summary["dropped"] == 0
        assert summary["mean_ns"] == 1234.0
        assert summary["p50_ns"] == summary["p95_ns"] == summary["p99_ns"] == 1234

    def test_exactly_full_ring_has_no_drops(self):
        from repro.serve.server import LatencyRing

        ring = LatencyRing(maxlen=8)
        for value in range(8):
            ring.observe(value)
        summary = ring.summary()
        assert summary["count"] == 8 and summary["dropped"] == 0
        assert summary["window"] == 8

    def test_wrapped_ring_labels_window_honestly(self):
        from repro.serve.server import LatencyRing

        ring = LatencyRing(maxlen=4)
        for value in (100, 200, 300, 400, 500, 600):
            ring.observe(value)
        summary = ring.summary()
        # Cumulative count/mean stay exact over the whole lifetime...
        assert summary["count"] == 6
        assert summary["mean_ns"] == pytest.approx(2100 / 6)
        # ...while percentiles honestly cover only the retained window.
        assert summary["dropped"] == 2 and summary["window"] == 4
        assert summary["p50_ns"] >= 300  # oldest two samples aged out
        assert ring.window_values() == [300, 400, 500, 600]

    def test_percentiles_track_window_not_lifetime(self):
        from repro.serve.server import LatencyRing

        ring = LatencyRing(maxlen=4)
        for value in (1, 1, 1, 1, 1000, 1000, 1000, 1000):
            ring.observe(value)
        assert ring.summary()["p50_ns"] == 1000


# -- per-endpoint telemetry --------------------------------------------------


class TestEndpointTelemetry:
    def test_per_endpoint_stats_and_statuses(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.request("POST", "/open", {"file": "f1"})
            conn.request("POST", "/open", {"file": "f1"})
            conn.request("POST", "/open", {"client": "x"}, expect_error=True)
            conn.request(
                "POST", "/invalidate", {"file": "nope"}, expect_error=True
            )
            stats = conn.stats()
        endpoints = stats["endpoints"]
        assert endpoints["open"]["requests"] == 3
        assert endpoints["open"]["errors"] == 1
        assert endpoints["open"]["statuses"] == {"200": 2, "400": 1}
        assert endpoints["invalidate"]["statuses"] == {"404": 1}
        assert endpoints["open"]["latency_ns"]["count"] == 3
        # the combined legacy sections still add up
        assert stats["errors"] == 2
        assert stats["requests"]["/open"] == 3

    def test_unknown_paths_fold_into_one_bucket(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            for index in range(5):
                conn.request("GET", f"/scan{index}", expect_error=True)
            stats = conn.stats()
        assert stats["endpoints"]["_other"]["requests"] == 5
        assert stats["endpoints"]["_other"]["errors"] == 5
        assert set(stats["endpoints"]) <= {
            "_other", "open", "fetch", "invalidate", "shutdown",
            "stats", "metrics", "journal", "healthz",
        }

    def test_registry_mirrors_endpoint_counters(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.request("POST", "/open", {"file": "f1"})
            conn.request("POST", "/open", {"client": "x"}, expect_error=True)
            conn.stats()
            registry = daemon.registry
        assert registry.counter("serve.endpoint.open.status.200").value == 1
        assert registry.counter("serve.endpoint.open.status.400").value == 1
        assert registry.counter("serve.endpoint.open.errors").value == 1
        assert (
            registry.histogram("serve.endpoint.open.latency_ns").count == 2
        )

    def test_prometheus_exposes_per_endpoint_errors(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.request("POST", "/open", {"client": "x"}, expect_error=True)
            _status, body = conn.request("GET", "/metrics")
        text = body["text"]
        assert "repro_serve_errors_open_total 1" in text
        assert "repro_serve_telemetry_windows_total" in text


# -- windowed telemetry ------------------------------------------------------


class TestTelemetryWindows:
    def test_event_windows_close_deterministically(self):
        scenario = tiny_scenario(
            telemetry_window_seconds=0.0, telemetry_window_events=50
        )
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            for low in range(0, 300, 25):
                conn.fetch([f"f{i % 37}" for i in range(low, low + 25)])
            stats = conn.stats()
        telemetry = stats["telemetry"]
        assert telemetry["schema"] == wire.TS_SCHEMA
        assert telemetry["seq"] == 6
        windows = telemetry["windows"]
        assert [w["index"] for w in windows] == list(range(6))
        assert all(w["source"] == "serve" for w in windows)
        assert all(w["events"] == 50 for w in windows)

    def test_window_sums_converge_to_lifetime_counters(self):
        scenario = tiny_scenario(
            telemetry_window_seconds=0.0, telemetry_window_events=40
        )
        trace = list(make_workload("server", 500, 5).file_ids())
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            for low in range(0, len(trace), 20):
                conn.fetch(trace[low : low + 20])
            daemon.force_sample()  # flush the partial tail window
            stats = conn.stats()
        windows = stats["telemetry"]["windows"]
        assert sum(w["hits"] for w in windows) == stats["cache"]["hits"]
        assert sum(w["misses"] for w in windows) == stats["cache"]["misses"]
        assert sum(w["events"] for w in windows) == stats["accesses"]

    def test_since_cursor_filters_windows(self):
        scenario = tiny_scenario(
            telemetry_window_seconds=0.0, telemetry_window_events=10
        )
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            for low in range(0, 40, 10):
                conn.fetch([f"f{i}" for i in range(low, low + 10)])
            _status, full = conn.request("GET", "/stats")
            _status, tail = conn.request("GET", "/stats?since=2")
            status, bad = conn.request(
                "GET", "/stats?since=banana", expect_error=True
            )
        assert [w["index"] for w in full["telemetry"]["windows"]] == [0, 1, 2, 3]
        assert [w["index"] for w in tail["telemetry"]["windows"]] == [2, 3]
        assert status == 400 and "since" in bad["error"]

    def test_retention_ring_drops_and_counts(self):
        scenario = tiny_scenario(
            telemetry_window_seconds=0.0,
            telemetry_window_events=10,
            telemetry_retain=3,
        )
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            for low in range(0, 60, 10):
                conn.fetch([f"f{i}" for i in range(low, low + 10)])
            stats = conn.stats()
        telemetry = stats["telemetry"]
        assert telemetry["seq"] == 6
        assert telemetry["retained"] == 3 and telemetry["dropped"] == 3
        assert [w["index"] for w in telemetry["windows"]] == [3, 4, 5]

    def test_observability_polls_do_not_emit_windows(self):
        scenario = tiny_scenario(telemetry_window_seconds=0.0)
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            for _ in range(5):
                conn.stats()
            assert daemon.force_sample() is None  # only /stats traffic: skip
            conn.fetch(["f1", "f2"])
            sample = daemon.force_sample()
            stats = conn.stats()
        assert sample is not None and sample["events"] == 2
        assert stats["telemetry"]["seq"] == 1

    def test_timer_sampler_emits_under_load(self):
        scenario = tiny_scenario(telemetry_window_seconds=0.05)
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                conn.fetch(["a", "b", "c"])
                if conn.stats()["telemetry"]["seq"] >= 2:
                    break
            stats = conn.stats()
        assert stats["telemetry"]["seq"] >= 2
        windows = stats["telemetry"]["windows"]
        assert all(w["seconds"] > 0 for w in windows)
        assert "requests_per_sec" in windows[0]
        assert "latency_ns" in windows[0]


# -- structured access log ---------------------------------------------------


class TestAccessLog:
    def test_one_json_line_per_request(self, tmp_path):
        log = tmp_path / "access.jsonl"
        scenario = tiny_scenario()
        with CacheDaemon(scenario, access_log=log) as daemon:
            with ServeConnection(daemon.url) as conn:
                conn.request("POST", "/open", {"file": "f1"})
                conn.fetch(["f1", "f2", "f3"])
                conn.request("GET", "/nope", expect_error=True)
                stats = conn.stats()
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert len(lines) == 4
        by_endpoint = {record["endpoint"]: record for record in lines}
        assert by_endpoint["/open"]["status"] == 200
        assert by_endpoint["/open"]["events"] == 1
        assert by_endpoint["/fetch"]["events"] == 3
        assert by_endpoint["/nope"]["status"] == 404
        ids = [record["id"] for record in lines]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        for record in lines:
            assert record["latency_ns"] > 0 and record["ts"] > 0
            assert record["method"] in ("GET", "POST")
        # the /stats request logs itself only after building its payload
        assert stats["access_log"]["lines"] == 3

    def test_rotation_caps_file_size(self, tmp_path):
        from repro.serve.server import AccessLog

        log = AccessLog(tmp_path / "a.jsonl", max_bytes=300, backups=2)
        for index in range(50):
            log.write({"id": index, "endpoint": "/open", "pad": "x" * 40})
        log.close()
        assert log.rotations > 0
        assert (tmp_path / "a.jsonl").stat().st_size <= 300
        assert (tmp_path / "a.jsonl.1").exists()
        # every surviving line is intact JSON
        for name in ("a.jsonl", "a.jsonl.1", "a.jsonl.2"):
            target = tmp_path / name
            if target.exists():
                for line in target.read_text().splitlines():
                    json.loads(line)

    def test_no_access_log_no_stats_section(self):
        with CacheDaemon(tiny_scenario()) as daemon, ServeConnection(daemon.url) as conn:
            conn.request("POST", "/open", {"file": "f1"})
            stats = conn.stats()
        assert "access_log" not in stats


# -- live stats stream -------------------------------------------------------


class TestStatsStream:
    def test_incremental_polls_reassemble_series(self):
        from repro.obs.live import StatsStream

        scenario = tiny_scenario(
            telemetry_window_seconds=0.0, telemetry_window_events=20
        )
        with CacheDaemon(scenario) as daemon, ServeConnection(daemon.url) as conn:
            stream = StatsStream(daemon.url)
            for low in range(0, 40, 20):
                conn.fetch([f"f{i}" for i in range(low, low + 20)])
            first = stream.poll()
            for low in range(0, 40, 20):
                conn.fetch([f"g{i}" for i in range(low, low + 20)])
            second = stream.poll()
            third = stream.poll()
            stream.close()
        assert [w.index for w in first] == [0, 1]
        assert [w.index for w in second] == [2, 3]
        assert third == []
        assert stream.cursor == 4 and stream.windows_seen == 4
        assert first[0].sample.source == "serve"
        assert first[0].requests > 0

    def test_failure_counts_and_recovers(self):
        from repro.obs.live import StatsStream

        scenario = tiny_scenario(
            telemetry_window_seconds=0.0, telemetry_window_events=10
        )
        daemon = CacheDaemon(scenario).start()
        dead = StatsStream("http://127.0.0.1:1", timeout=0.5)
        assert dead.poll() == []
        assert dead.failures == 1
        with ServeConnection(daemon.url) as conn:
            conn.fetch([f"f{i}" for i in range(10)])
        live = StatsStream(daemon.url)
        assert len(live.poll()) == 1
        live.close()
        daemon.close()

    def test_restart_resets_cursor_and_replays_history(self):
        from repro.obs.live import StatsStream

        scenario = tiny_scenario(
            telemetry_window_seconds=0.0, telemetry_window_events=10
        )
        daemon = CacheDaemon(scenario).start()
        stream = StatsStream(daemon.url)
        with ServeConnection(daemon.url) as conn:
            for low in range(0, 50, 10):
                conn.fetch([f"f{i}" for i in range(low, low + 10)])
        assert len(stream.poll()) == 5
        port = daemon.port
        daemon.close()
        stream.close()  # the old keep-alive died with the old process
        reborn = CacheDaemon(scenario, port=port).start()
        with ServeConnection(reborn.url) as conn:
            for low in range(0, 20, 10):
                conn.fetch([f"g{i}" for i in range(low, low + 10)])
        windows = stream.poll()
        reborn.close()
        stream.close()
        assert stream.restarts == 1
        assert [w.index for w in windows] == [0, 1]
        assert stream.cursor == 2

    def test_final_stats_raises_on_dead_daemon(self):
        from repro.obs.live import StatsStream

        stream = StatsStream("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(SlamError):
            stream.final_stats()


# -- concurrent scrapes ------------------------------------------------------


class TestConcurrentScrapes:
    def test_stats_and_metrics_never_tear_under_slam(self):
        """Threaded clients hammer /stats + /metrics while slam runs.

        Every response must be complete valid JSON (or Prometheus text
        ending in # EOF) and every telemetry seq must be monotonic per
        scraper -- a torn snapshot or a backwards cursor fails.
        """
        import threading

        scenario = tiny_scenario(
            telemetry_window_seconds=0.05, telemetry_window_events=100
        )
        trace = list(make_workload("server", 2000, 5).file_ids())
        problems = []
        with CacheDaemon(scenario) as daemon:
            stop = threading.Event()

            def scrape_stats():
                seen = -1
                conn = ServeConnection(daemon.url, timeout=5.0)
                try:
                    while not stop.is_set():
                        payload = conn.stats()  # validates schema + cache
                        wire.validate_telemetry(payload)
                        seq = payload["telemetry"]["seq"]
                        if seq < seen:
                            problems.append(f"seq went backwards: {seq} < {seen}")
                        seen = seq
                        for window in payload["telemetry"]["windows"]:
                            if window["index"] >= seq:
                                problems.append("window index beyond seq")
                finally:
                    conn.close()

            def scrape_metrics():
                conn = ServeConnection(daemon.url, timeout=5.0)
                try:
                    while not stop.is_set():
                        _status, body = conn.request("GET", "/metrics")
                        if not body["text"].rstrip().endswith("# EOF"):
                            problems.append("torn /metrics body")
                finally:
                    conn.close()

            scrapers = [
                threading.Thread(target=scrape_stats, daemon=True),
                threading.Thread(target=scrape_stats, daemon=True),
                threading.Thread(target=scrape_metrics, daemon=True),
            ]
            for thread in scrapers:
                thread.start()
            try:
                report = run_slam(daemon.url, trace, workers=2, batch=16)
            finally:
                stop.set()
                for thread in scrapers:
                    thread.join(timeout=10)
            final = daemon.stats_payload()
        assert problems == []
        assert report.events == len(trace)
        assert final["accesses"] == len(trace)

    def test_metrics_server_concurrent_scrapes(self):
        """MetricsServer serves many concurrent scrapers untorn."""
        import threading
        import urllib.request

        payload = "x" * 20000 + "\n# EOF\n"
        problems = []
        with MetricsServer(lambda: payload) as server:

            def scrape():
                for _ in range(20):
                    with urllib.request.urlopen(
                        server.url, timeout=5
                    ) as response:
                        body = response.read().decode("utf-8")
                    if body != payload:
                        problems.append("torn MetricsServer body")

            threads = [
                threading.Thread(target=scrape, daemon=True) for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert problems == []


# -- slam endpoint-error reporting -------------------------------------------


class TestSlamEndpointErrors:
    def test_clean_run_brackets_out_prior_errors(self):
        with CacheDaemon(tiny_scenario()) as daemon:
            with ServeConnection(daemon.url) as conn:
                # pre-existing errors must not leak into the run's delta
                conn.request(
                    "POST", "/invalidate", {"file": "nope"}, expect_error=True
                )
            report = run_slam(daemon.url, ["a", "b", "c"], workers=1, batch=2)
        assert report.delta["server_errors"] == 0
        assert report.delta["endpoint_errors"] == {}
        assert report._server_error_cell() == "0"
        rows = dict((row[0], row[1]) for row in report.rows()[1:])
        assert rows["server errors (this run)"] == "0"

    def test_errors_during_run_are_named_by_endpoint(self):
        import threading

        trace = list(make_workload("server", 3000, 5).file_ids())
        with CacheDaemon(tiny_scenario()) as daemon:

            def inject():
                # wait until slam traffic is flowing, then 404 twice while
                # the workers are still mid-run (inside the stats bracket)
                deadline = time.monotonic() + 10
                while daemon.accesses < 50 and time.monotonic() < deadline:
                    time.sleep(0.001)
                with ServeConnection(daemon.url) as conn:
                    for name in ("gone", "gone2"):
                        conn.request(
                            "POST",
                            "/invalidate",
                            {"file": name},
                            expect_error=True,
                        )

            saboteur = threading.Thread(target=inject, daemon=True)
            saboteur.start()
            report = run_slam(daemon.url, trace, workers=2, batch=8)
            saboteur.join(10)
        assert report.delta["server_errors"] == 2
        assert report.delta["endpoint_errors"] == {"invalidate": 2}
        assert report._server_error_cell() == "2 (invalidate 2)"

    def test_endpoint_error_delta_helper(self):
        from repro.serve.client import _endpoint_error_delta

        before = {
            "endpoints": {
                "open": {"errors": 1},
                "invalidate": {"errors": 0},
            }
        }
        after = {
            "endpoints": {
                "open": {"errors": 3},
                "invalidate": {"errors": 5},
                "fetch": {"errors": 0},
            }
        }
        assert _endpoint_error_delta(before, after) == {
            "open": 2,
            "invalidate": 5,
        }
        # pre-telemetry daemons have no endpoints section: empty, not a crash
        assert _endpoint_error_delta({}, {}) == {}
        assert _endpoint_error_delta({}, after) == {"open": 3, "invalidate": 5}

    def test_server_error_cell_formats_breakdown(self):
        report = SlamReport(url="http://x", workers=1, batch=1)
        report.delta = {"server_errors": 0, "endpoint_errors": {}}
        assert report._server_error_cell() == "0"
        report.delta = {
            "server_errors": 7,
            "endpoint_errors": {"invalidate": 5, "open": 2},
        }
        assert report._server_error_cell() == "7 (invalidate 5, open 2)"
        rows = dict((row[0], row[1]) for row in report.rows()[1:])
        assert rows["server errors (this run)"] == "7 (invalidate 5, open 2)"

    def test_report_json_carries_endpoint_errors(self, tmp_path):
        with CacheDaemon(tiny_scenario()) as daemon:
            report = run_slam(daemon.url, ["a", "b"], workers=1, batch=1)
        payload = report.to_dict()
        assert "server_errors" in payload["delta"]
        assert "endpoint_errors" in payload["delta"]
