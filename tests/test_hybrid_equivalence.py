"""Property test: the O(1) hybrid successor list matches the old O(n) one.

The original ``HybridSuccessorList.observe`` multiplied every retained
score by ``decay`` per observation — O(capacity) per event.  The
rewrite keeps one global inflation factor and stores pre-inflated
scores, making ``observe`` O(1).  This test replays random streams
through both the current implementation and a faithful reimplementation
of the old per-event-decay semantics, asserting identical prediction
order, membership, eviction choices, and (up to float tolerance)
effective scores at every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.successors import HybridSuccessorList


class OldHybrid:
    """The pre-optimization reference: decay applied per observation."""

    def __init__(self, capacity, decay):
        self.capacity = capacity
        self.decay = decay
        self._scores = {}
        self._stamp = 0
        self._last_seen = {}

    def observe(self, successor):
        self._stamp += 1
        for retained in self._scores:
            self._scores[retained] *= self.decay
        if successor in self._scores:
            self._scores[successor] += 1.0
        else:
            if len(self._scores) >= self.capacity:
                victim = min(
                    self._scores,
                    key=lambda s: (self._scores[s], self._last_seen[s]),
                )
                del self._scores[victim]
                del self._last_seen[victim]
            self._scores[successor] = 1.0
        self._last_seen[successor] = self._stamp

    def predict(self):
        return sorted(
            self._scores,
            key=lambda s: (-self._scores[s], -self._last_seen[s]),
        )

    def score_of(self, successor):
        return self._scores[successor]


streams = st.lists(
    st.sampled_from("abcdefgh"), min_size=0, max_size=200
)
decays = st.sampled_from([0.0, 0.3, 0.5, 0.8, 0.95])
capacities = st.integers(min_value=1, max_value=6)


class TestHybridEquivalence:
    @given(stream=streams, decay=decays, capacity=capacities)
    @settings(max_examples=150, deadline=None)
    def test_predict_order_matches_old_semantics(self, stream, decay, capacity):
        new = HybridSuccessorList(capacity, decay=decay)
        old = OldHybrid(capacity, decay)
        for symbol in stream:
            new.observe(symbol)
            old.observe(symbol)
            assert new.predict() == old.predict()
            assert len(new) == len(old._scores)
            for retained in old._scores:
                assert retained in new

    @given(stream=streams, decay=decays, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_effective_scores_match_old_semantics(self, stream, decay, capacity):
        new = HybridSuccessorList(capacity, decay=decay)
        old = OldHybrid(capacity, decay)
        for symbol in stream:
            new.observe(symbol)
            old.observe(symbol)
        for retained in old._scores:
            expected = old.score_of(retained)
            actual = new.score_of(retained)
            assert abs(actual - expected) <= 1e-9 * max(1.0, abs(expected))

    def test_long_stream_stays_finite(self):
        # The lazy-inflation trick divides by decay per event; without
        # the rescale guard this would overflow within ~3200 events at
        # decay 0.8.  200k events must stay finite and correctly ranked.
        import math
        slist = HybridSuccessorList(4, decay=0.8)
        for index in range(200_000):
            slist.observe("abcd"[index % 4])
        for symbol in slist.predict():
            assert math.isfinite(slist.score_of(symbol))
