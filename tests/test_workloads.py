"""Unit tests for workload building blocks: zipf, activities, sessions."""

import random

import pytest

from repro.errors import WorkloadError
from repro.traces.events import EventKind
from repro.workloads.activities import (
    MarkovActivity,
    ScriptedActivity,
    make_file_names,
)
from repro.workloads.sessions import ClientSession, Interleaver, SessionConfig
from repro.workloads.zipf import ZipfSampler, geometric, zipf_choice


class TestZipfSampler:
    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(0)
        with pytest.raises(WorkloadError):
            ZipfSampler(5, exponent=-1)

    def test_rank_zero_most_likely(self, rng):
        sampler = ZipfSampler(50, exponent=1.0)
        counts = [0] * 50
        for _ in range(5000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] == max(counts)
        assert counts[0] > counts[10] > 0

    def test_probability_sums_to_one(self):
        sampler = ZipfSampler(10, exponent=1.2)
        total = sum(sampler.probability(r) for r in range(10))
        assert total == pytest.approx(1.0)

    def test_probability_out_of_range(self):
        sampler = ZipfSampler(3)
        with pytest.raises(WorkloadError):
            sampler.probability(3)

    def test_exponent_zero_is_uniform(self, rng):
        sampler = ZipfSampler(4, exponent=0.0)
        for rank in range(4):
            assert sampler.probability(rank) == pytest.approx(0.25)

    def test_samples_in_range(self, rng):
        sampler = ZipfSampler(7)
        assert all(0 <= sampler.sample(rng) < 7 for _ in range(1000))


class TestZipfChoice:
    def test_empty_rejected(self, rng):
        with pytest.raises(WorkloadError):
            zipf_choice([], rng)

    def test_prefers_head(self, rng):
        picks = [zipf_choice(["a", "b", "c"], rng) for _ in range(2000)]
        assert picks.count("a") > picks.count("c")


class TestGeometric:
    def test_minimum_one(self, rng):
        assert all(geometric(rng, 1.0) == 1 for _ in range(10))

    def test_mean_approx(self, rng):
        draws = [geometric(rng, 5.0) for _ in range(5000)]
        assert sum(draws) / len(draws) == pytest.approx(5.0, rel=0.1)

    def test_rejects_sub_one(self, rng):
        with pytest.raises(WorkloadError):
            geometric(rng, 0.5)


class TestMakeFileNames:
    def test_distinct(self):
        names = make_file_names("p", 100)
        assert len(set(names)) == 100
        assert all(name.startswith("p/") for name in names)

    def test_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            make_file_names("p", 0)


class TestScriptedActivity:
    def test_cycles_deterministically(self, rng):
        activity = ScriptedActivity("t", ["a", "b", "c"])
        emitted = [activity.emit(rng)[0] for _ in range(7)]
        assert emitted == ["a", "b", "c", "a", "b", "c", "a"]

    def test_ephemeral_slots_fresh_each_cycle(self, rng):
        activity = ScriptedActivity("t", ["a", "b"], ephemeral_slots=[1])
        first_cycle = [activity.emit(rng) for _ in range(2)]
        second_cycle = [activity.emit(rng) for _ in range(2)]
        assert first_cycle[1][0] != second_cycle[1][0]
        assert first_cycle[1][1] is EventKind.CREATE

    def test_write_slots(self, rng):
        activity = ScriptedActivity("t", ["a", "b"], write_slots=[0])
        access = activity.emit(rng)
        assert access == ("a", EventKind.WRITE)

    def test_rejects_out_of_range_slots(self):
        with pytest.raises(WorkloadError, match="outside"):
            ScriptedActivity("t", ["a"], ephemeral_slots=[5])

    def test_rejects_bad_probabilities(self):
        with pytest.raises(WorkloadError):
            ScriptedActivity("t", ["a", "b"], drift=1.5)

    def test_drift_changes_chain(self):
        rng = random.Random(0)
        activity = ScriptedActivity("t", [f"f{i}" for i in range(10)], drift=1.0)
        original = list(activity.files)
        for _ in range(40):  # several cycles with certain drift
            activity.emit(rng)
        assert activity.files != original
        assert sorted(activity.files) == sorted(original)

    def test_loops_revisit_recent_files(self):
        rng = random.Random(0)
        activity = ScriptedActivity(
            "t", [f"f{i}" for i in range(20)], loop_probability=1.0
        )
        emitted = [activity.emit(rng)[0] for _ in range(50)]
        # With certain looping, files must repeat well before the cycle
        # would naturally return (20 steps).
        assert len(set(emitted[:10])) < 10

    def test_reset(self, rng):
        activity = ScriptedActivity("t", ["a", "b", "c"])
        activity.emit(rng)
        activity.reset()
        assert activity.emit(rng)[0] == "a"

    def test_requires_files(self):
        with pytest.raises(WorkloadError):
            ScriptedActivity("t", [])


class TestMarkovActivity:
    def test_high_stability_follows_primary(self):
        rng = random.Random(1)
        activity = MarkovActivity("t", [f"f{i}" for i in range(5)], stability=1.0)
        emitted = [activity.emit(rng)[0] for _ in range(15)]
        # Fully stable: the walk is a fixed permutation cycle of 5.
        assert emitted[:5] == emitted[5:10] == emitted[10:15]

    def test_zero_stability_still_valid(self):
        rng = random.Random(2)
        activity = MarkovActivity("t", ["a", "b", "c"], stability=0.0)
        emitted = {activity.emit(rng)[0] for _ in range(100)}
        assert emitted <= {"a", "b", "c"}

    def test_write_fraction(self):
        rng = random.Random(3)
        activity = MarkovActivity("t", ["a", "b"], write_fraction=1.0)
        assert activity.emit(rng)[1] is EventKind.WRITE

    def test_rewire_changes_primary_map(self):
        rng = random.Random(4)
        activity = MarkovActivity(
            "t", [f"f{i}" for i in range(8)], stability=1.0, rewire_probability=1.0
        )
        before = dict(activity._primary)
        for _ in range(20):
            activity.emit(rng)
        assert activity._primary != before
        # Still covers all files as values (permutation preserved).
        assert sorted(activity._primary.values()) == sorted(before.values())

    def test_rejects_bad_parameters(self):
        with pytest.raises(WorkloadError):
            MarkovActivity("t", ["a"], stability=2.0)
        with pytest.raises(WorkloadError):
            MarkovActivity("t", ["a"], write_fraction=-0.1)
        with pytest.raises(WorkloadError):
            MarkovActivity("t", ["a"], rewire_probability=7.0)

    def test_single_file(self):
        rng = random.Random(5)
        activity = MarkovActivity("t", ["only"], stability=0.5)
        assert activity.emit(rng)[0] == "only"

    def test_reset(self):
        rng = random.Random(6)
        activity = MarkovActivity("t", ["a", "b", "c"], stability=1.0)
        first = activity.emit(rng)[0]
        activity.emit(rng)
        activity.reset()
        assert activity.emit(rng)[0] == first


class TestClientSession:
    def _session(self, **config_kwargs):
        activities = [
            ScriptedActivity("a0", ["x0", "x1", "x2"]),
            ScriptedActivity("a1", ["y0", "y1", "y2"]),
        ]
        return ClientSession("c0", activities, SessionConfig(**config_kwargs))

    def test_requires_activities(self):
        with pytest.raises(WorkloadError):
            ClientSession("c0", [])

    def test_emits_activity_files(self, rng):
        session = self._session(burst_mean=10.0, shared_probability=0.0)
        emitted = {session.emit(rng)[0] for _ in range(100)}
        assert emitted <= {"x0", "x1", "x2", "y0", "y1", "y2"}

    def test_shared_utility_on_switch(self, rng):
        session = self._session(
            burst_mean=1.0,
            shared_probability=1.0,
            shared_utilities=("bin/sh",),
        )
        emitted = [session.emit(rng)[0] for _ in range(50)]
        assert "bin/sh" in emitted

    def test_noise_injection(self, rng):
        session = self._session(
            burst_mean=100.0,
            shared_probability=0.0,
            noise_files=("noise/n0", "noise/n1"),
            noise_probability=1.0,
        )
        # After the initial switch, every access is noise.
        emitted = [session.emit(rng)[0] for _ in range(20)]
        assert all(f.startswith("noise/") for f in emitted)

    def test_preference_drift_changes_top_choice(self):
        rng = random.Random(9)
        activities = [
            ScriptedActivity(f"a{i}", [f"f{i}.0", f"f{i}.1"]) for i in range(6)
        ]
        config = SessionConfig(
            burst_mean=1.0,
            activity_exponent=3.0,  # heavily top-weighted
            shared_probability=0.0,
            preference_drift=1.0,
        )
        session = ClientSession("c0", activities, config)
        emitted = {session.emit(rng)[0].split(".")[0] for _ in range(300)}
        # With certain drift, many different activities reach the top.
        assert len(emitted) >= 4


class TestInterleaver:
    def test_requires_sessions(self):
        with pytest.raises(WorkloadError):
            Interleaver([])

    def test_event_count_and_clients(self, rng):
        sessions = [
            ClientSession(
                f"c{i}", [ScriptedActivity(f"a{i}", [f"f{i}a", f"f{i}b"])]
            )
            for i in range(3)
        ]
        trace = Interleaver(sessions, run_mean=2.0).generate(100, rng)
        assert len(trace) == 100
        assert {e.client_id for e in trace} <= {"c0", "c1", "c2"}

    def test_zero_events(self, rng):
        sessions = [ClientSession("c", [ScriptedActivity("a", ["x", "y"])])]
        assert len(Interleaver(sessions).generate(0, rng)) == 0

    def test_negative_events_rejected(self, rng):
        sessions = [ClientSession("c", [ScriptedActivity("a", ["x", "y"])])]
        with pytest.raises(WorkloadError):
            Interleaver(sessions).generate(-1, rng)

    def test_sticky_runs(self):
        rng = random.Random(7)
        sessions = [
            ClientSession(f"c{i}", [ScriptedActivity(f"a{i}", [f"f{i}", f"g{i}"])])
            for i in range(2)
        ]
        trace = Interleaver(sessions, run_mean=20.0).generate(200, rng)
        clients = [e.client_id for e in trace]
        switches = sum(1 for a, b in zip(clients, clients[1:]) if a != b)
        # Mean run 20 over 200 events: on the order of 10 switches, far
        # fewer than per-event alternation.
        assert switches < 50
