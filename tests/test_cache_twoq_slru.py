"""Unit tests for the 2Q and SLRU cache policies."""

import pytest

from repro.caching.slru import SLRUCache
from repro.caching.twoq import TwoQCache


class TestTwoQ:
    def test_first_access_enters_staging(self):
        cache = TwoQCache(8)
        cache.access("a")
        assert cache.in_staging("a")

    def test_ghost_rereference_promotes_to_main(self):
        cache = TwoQCache(4, kin=1, kout=4)
        cache.access("a")
        cache.access("b")  # a pushed over Kin on the next eviction
        cache.access("c")
        cache.access("d")
        cache.access("e")  # forces evictions: staged keys become ghosts
        assert cache.in_ghost("a")
        cache.access("a")  # ghost hit: promoted to Am
        assert "a" in cache
        assert not cache.in_staging("a")

    def test_scan_resistance(self):
        # A working set that has earned Am residency should survive a
        # scan of one-time keys (which only churn A1in).
        cache = TwoQCache(8, kin=2, kout=8)
        working = ["w1", "w2"]
        # Earn Am membership via ghost re-reference: enough evictors to
        # push the working set out of A1in and into the ghost list.
        for key in working:
            cache.access(key)
        for i in range(9):
            cache.access(f"evictor{i}")
        for key in working:
            cache.access(key)  # ghost hits -> Am
        for i in range(20):
            cache.access(f"scan{i}")
        for key in working:
            assert key in cache, key

    def test_capacity_bound(self):
        cache = TwoQCache(6)
        for i in range(200):
            cache.access(f"k{i % 19}")
        assert len(cache) <= 6

    def test_ghost_list_bounded(self):
        cache = TwoQCache(4, kin=1, kout=3)
        for i in range(50):
            cache.access(f"k{i}")
        ghosts = sum(1 for i in range(50) if cache.in_ghost(f"k{i}"))
        assert ghosts <= 3

    def test_staging_hit_does_not_promote(self):
        cache = TwoQCache(8)
        cache.access("a")
        cache.access("a")  # hit in A1in: stays in A1in
        assert cache.in_staging("a")

    def test_remove(self):
        cache = TwoQCache(8)
        cache.access("a")
        assert cache.invalidate("a")
        assert "a" not in cache
        with pytest.raises(KeyError):
            cache._remove("ghost")

    def test_keys_iterates_both_segments(self):
        cache = TwoQCache(8, kin=1, kout=8)
        cache.access("a")
        cache.access("b")
        assert set(cache.keys()) == {"a", "b"}


class TestSLRU:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            SLRUCache(8, protected_fraction=0.0)
        with pytest.raises(ValueError):
            SLRUCache(8, protected_fraction=1.0)

    def test_miss_enters_probationary(self):
        cache = SLRUCache(8)
        cache.access("a")
        assert not cache.is_protected("a")

    def test_hit_promotes(self):
        cache = SLRUCache(8)
        cache.access("a")
        cache.access("a")
        assert cache.is_protected("a")

    def test_victims_from_probationary_first(self):
        cache = SLRUCache(3, protected_fraction=0.5)
        cache.access("hot")
        cache.access("hot")  # protected
        cache.access("p1")
        cache.access("p2")
        cache.access("p3")  # evicts p1 (probationary LRU), not hot
        assert "hot" in cache
        assert "p1" not in cache

    def test_protected_overflow_demotes(self):
        cache = SLRUCache(4, protected_fraction=0.3)  # protected cap 1
        cache.access("a")
        cache.access("a")  # a protected
        cache.access("b")
        cache.access("b")  # b promoted, a demoted to probationary
        assert cache.is_protected("b")
        assert "a" in cache
        assert not cache.is_protected("a")

    def test_one_timers_cannot_displace_protected(self):
        cache = SLRUCache(6, protected_fraction=0.5)
        for key in ("w1", "w2", "w3"):
            cache.access(key)
            cache.access(key)  # all protected
        for i in range(30):
            cache.access(f"scan{i}")
        for key in ("w1", "w2", "w3"):
            assert key in cache, key

    def test_capacity_bound(self):
        cache = SLRUCache(5)
        for i in range(100):
            cache.access(f"k{i % 13}")
        assert len(cache) <= 5

    def test_eviction_falls_back_to_protected(self):
        cache = SLRUCache(2, protected_fraction=0.6)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.access("b")
        # Both protected (cap 1 -> a demoted), cache full; next miss
        # must still find a victim.
        cache.access("c")
        assert len(cache) <= 2

    def test_remove_both_segments(self):
        cache = SLRUCache(4)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        assert cache.invalidate("a")
        assert cache.invalidate("b")
        with pytest.raises(KeyError):
            cache._remove("zzz")


class TestLIRS:
    def _make(self, capacity=10, **kwargs):
        from repro.caching.lirs import LIRSCache

        return LIRSCache(capacity, **kwargs)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            self._make(hir_fraction=0.0)
        with pytest.raises(ValueError):
            self._make(hir_fraction=1.0)
        with pytest.raises(ValueError):
            self._make(ghost_factor=-1)

    def test_cold_fill_enters_lir(self):
        cache = self._make(10)
        cache.access("a")
        assert cache.is_lir("a")

    def test_capacity_bound_under_churn(self):
        import random

        rng = random.Random(2)
        cache = self._make(8)
        for _ in range(3000):
            cache.access(f"k{rng.randrange(40)}")
        assert len(cache) <= 8

    def test_scan_resistance(self):
        cache = self._make(12)
        working = [f"w{i}" for i in range(6)]
        for _ in range(4):
            for key in working:
                cache.access(key)
        for i in range(60):
            cache.access(f"scan{i}")
        survivors = sum(1 for key in working if key in cache)
        assert survivors == len(working)

    def test_short_irr_promotes_hir_to_lir(self):
        cache = self._make(6, hir_fraction=0.34)  # lir cap 4, hir cap 2
        for key in ("l1", "l2", "l3", "l4"):
            cache.access(key)  # fill the LIR set
        cache.access("h1")  # resident HIR
        cache.access("h1")  # short IRR: must be LIR now
        assert cache.is_lir("h1")

    def test_ghost_rereference_enters_lir(self):
        cache = self._make(5, hir_fraction=0.2, ghost_factor=4.0)
        for key in ("l1", "l2", "l3", "l4"):
            cache.access(key)
        cache.access("g")   # resident HIR (queue size 1)
        cache.access("x")   # evicts g -> ghost
        assert "g" not in cache
        cache.access("g")   # ghost re-reference: short IRR -> LIR
        assert cache.is_lir("g")

    def test_hit_miss_accounting(self):
        cache = self._make(6)
        sequence = ["a", "b", "a", "c", "a"] * 10
        for key in sequence:
            cache.access(key)
        assert cache.stats.hits + cache.stats.misses == len(sequence)

    def test_invalidate_both_kinds(self):
        cache = self._make(5, hir_fraction=0.2)
        for key in ("l1", "l2", "l3", "l4"):
            cache.access(key)
        cache.access("h1")
        assert cache.invalidate("l1")
        assert cache.invalidate("h1")
        assert not cache.invalidate("ghost")
        assert len(cache) == 3

    def test_keys_cover_residents(self):
        cache = self._make(6)
        for key in ("a", "b", "c"):
            cache.access(key)
        assert set(cache.keys()) == {"a", "b", "c"}
