"""Unit tests for the LFU cache."""

import pytest

from repro.caching.lfu import LFUCache


class TestLFU:
    def test_evicts_least_frequent(self):
        cache = LFUCache(2)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.access("c")  # b has count 1, a has count 2 -> evict b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_tie_broken_by_lru(self):
        cache = LFUCache(2)
        cache.access("a")
        cache.access("b")
        # Both count 1; a is older -> evicted first.
        cache.access("c")
        assert "a" not in cache
        assert "b" in cache

    def test_frequency_tracking(self):
        cache = LFUCache(3)
        cache.access("a")
        cache.access("a")
        cache.access("a")
        assert cache.frequency_of("a") == 3

    def test_frequency_reset_on_readmission(self):
        cache = LFUCache(1)
        cache.access("a")
        cache.access("a")
        cache.access("b")  # evicts a despite count 2 (only resident)
        cache.access("a")
        assert cache.frequency_of("a") == 1

    def test_min_frequency_recovery_after_eviction(self):
        cache = LFUCache(3)
        for _ in range(3):
            cache.access("a")
        for _ in range(2):
            cache.access("b")
        cache.access("c")
        cache.access("d")  # evicts c (count 1)
        assert "c" not in cache
        cache.access("e")  # evicts d (count 1)
        assert "d" not in cache
        assert "a" in cache and "b" in cache

    def test_remove(self):
        cache = LFUCache(2)
        cache.access("a")
        cache.access("b")
        assert cache.invalidate("a")
        assert "a" not in cache
        assert len(cache) == 1

    def test_remove_min_bucket_updates_floor(self):
        cache = LFUCache(2)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.invalidate("b")  # only count-1 entry removed
        cache.access("c")
        cache.access("d")  # evicts c (count 1), not a (count 2)
        assert "a" in cache
        assert "c" not in cache

    def test_hit_miss_accounting(self):
        cache = LFUCache(2)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_keys(self):
        cache = LFUCache(3)
        for key in "abc":
            cache.access(key)
        assert set(cache.keys()) == {"a", "b", "c"}

    def test_install_path(self):
        cache = LFUCache(2)
        assert cache.install("x") is True
        assert cache.frequency_of("x") == 1
        assert cache.stats.accesses == 0
