"""Unit tests for the distributed file system replay engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import DistributedFileSystem, Store, replay_cache
from repro.traces.events import Trace, TraceEvent


class TestStore:
    def test_fetch_counting(self):
        store = Store()
        store.fetch("a")
        store.fetch_group(["b", "c", "d"])
        assert store.fetches == 4
        assert store.group_fetches == 1

    def test_fetch_returns_identity(self):
        store = Store()
        assert store.fetch("x") == "x"
        assert store.fetch_group(["a", "b"]) == ["a", "b"]


class TestDistributedFileSystem:
    def test_client_caches_created_lazily(self):
        system = DistributedFileSystem(client_capacity=4)
        system.access("c1", "a")
        system.access("c2", "b")
        assert set(system.clients) == {"c1", "c2"}

    def test_client_hit_no_remote_request(self):
        system = DistributedFileSystem(client_capacity=4, group_size=1)
        system.access("c1", "a")
        requests_after_miss = system.remote_requests
        system.access("c1", "a")
        assert system.remote_requests == requests_after_miss

    def test_group_fetch_counts_store_fetches(self):
        system = DistributedFileSystem(client_capacity=10, group_size=3)
        # Train: chain a -> b -> c.
        for _ in range(2):
            for key in ["a", "b", "c"]:
                system.access("c1", key)
        metrics = system.metrics()
        assert metrics.store_fetches >= 3
        assert metrics.remote_requests >= 3

    def test_cooperative_tracker_sees_hits(self):
        system = DistributedFileSystem(
            client_capacity=10, group_size=2, cooperative=True
        )
        for _ in range(3):
            system.access("c1", "a")
            system.access("c1", "b")
        assert system.tracker.most_likely("a") == "b"

    def test_uncooperative_tracker_sees_only_misses(self):
        system = DistributedFileSystem(
            client_capacity=10, group_size=2, cooperative=False
        )
        for _ in range(3):
            system.access("c1", "a")
            system.access("c1", "b")
        # Only the two cold misses reached the server: a then b once.
        assert system.tracker.most_likely("a") == "b"
        assert system.tracker.most_likely("b") is None

    def test_server_cache_absorbs_repeat_misses(self):
        system = DistributedFileSystem(
            client_capacity=1, server_capacity=10, group_size=1
        )
        for _ in range(4):
            system.access("c1", "a")
            system.access("c1", "b")
        metrics = system.metrics()
        # Client (capacity 1) misses most accesses; server absorbs all
        # but the two cold fetches.
        assert metrics.server_stats.hits > 0
        assert metrics.store_fetches == 2

    def test_replay_uses_event_client_ids(self):
        system = DistributedFileSystem(client_capacity=4)
        trace = Trace()
        trace.append(TraceEvent("a", client_id="east"))
        trace.append(TraceEvent("b", client_id="west"))
        trace.append(TraceEvent("a"))  # defaults to client00
        metrics = system.replay(trace)
        assert set(metrics.client_stats) == {"east", "west", "client00"}
        assert metrics.total_client_accesses == 3

    def test_mean_client_hit_rate(self):
        system = DistributedFileSystem(client_capacity=4, group_size=1)
        for _ in range(5):
            system.access("c1", "a")
        metrics = system.metrics()
        assert metrics.mean_client_hit_rate == pytest.approx(4 / 5)

    def test_grouping_reduces_remote_requests(self):
        files = [f"f{i}" for i in range(30)]
        sequence = files * 6
        plain = DistributedFileSystem(client_capacity=15, group_size=1)
        for key in sequence:
            plain.access("c", key)
        grouped = DistributedFileSystem(client_capacity=15, group_size=5)
        for key in sequence:
            grouped.access("c", key)
        assert grouped.remote_requests < plain.remote_requests

    def test_metadata_entries_reported(self):
        system = DistributedFileSystem(client_capacity=4)
        for key in ["a", "b", "c"]:
            system.access("c1", key)
        assert system.metrics().metadata_entries == 2

    def test_empty_metrics(self):
        system = DistributedFileSystem(client_capacity=4)
        metrics = system.metrics()
        assert metrics.total_client_accesses == 0
        assert metrics.mean_client_hit_rate == 0.0


class TestReplayCache:
    def test_replays_and_snapshots(self):
        from repro.caching.lru import LRUCache

        cache = LRUCache(2)
        stats = replay_cache(cache, ["a", "b", "a"])
        assert stats.accesses == 3
        assert stats.hits == 1

    def test_rejects_statless_target(self):
        class Weird:
            def access(self, key):
                return False

        with pytest.raises(SimulationError, match="stats"):
            replay_cache(Weird(), ["a"])


class TestWriteInvalidation:
    def _trace_with_writes(self):
        from repro.traces.events import EventKind

        trace = Trace()
        # Both clients read the shared file, then c1 writes it.
        trace.append(TraceEvent("shared", client_id="c1"))
        trace.append(TraceEvent("shared", client_id="c2"))
        trace.append(TraceEvent("shared", EventKind.WRITE, client_id="c1"))
        trace.append(TraceEvent("shared", client_id="c2"))  # must re-fetch
        trace.append(TraceEvent("shared", client_id="c1"))  # writer kept it
        return trace

    def test_write_breaks_other_clients_callbacks(self):
        system = DistributedFileSystem(
            client_capacity=4, group_size=1, invalidate_on_write=True
        )
        metrics = system.replay(self._trace_with_writes())
        assert metrics.invalidations == 1
        # c2's re-read after the write is a miss; c1's is a hit.
        assert metrics.client_stats["c2"].misses == 2
        assert metrics.client_stats["c1"].hits == 2

    def test_without_flag_no_invalidation(self):
        system = DistributedFileSystem(client_capacity=4, group_size=1)
        metrics = system.replay(self._trace_with_writes())
        assert metrics.invalidations == 0
        assert metrics.client_stats["c2"].misses == 1

    def test_delete_invalidates_everywhere(self):
        from repro.traces.events import EventKind

        trace = Trace()
        trace.append(TraceEvent("doomed", client_id="c1"))
        trace.append(TraceEvent("doomed", client_id="c2"))
        trace.append(TraceEvent("doomed", EventKind.DELETE, client_id="c1"))
        system = DistributedFileSystem(
            client_capacity=4,
            server_capacity=4,
            group_size=1,
            invalidate_on_write=True,
        )
        system.replay(trace)
        assert "doomed" not in system.clients["c1"]
        assert "doomed" not in system.clients["c2"]
        assert "doomed" not in system.server_cache

    def test_write_workload_end_to_end(self):
        from repro.workloads import make_write

        trace = make_write(4000)
        system = DistributedFileSystem(
            client_capacity=150, group_size=5, invalidate_on_write=True
        )
        metrics = system.replay(trace)
        assert metrics.invalidations > 0
        assert metrics.mean_client_hit_rate > 0.3
