"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caching import POLICIES, make_cache
from repro.caching.lru import LRUCache
from repro.core.aggregating_cache import AggregatingClientCache
from repro.core.entropy import successor_entropy, successor_entropy_breakdown
from repro.core.grouping import GroupBuilder
from repro.core.successors import (
    LFUSuccessorList,
    LRUSuccessorList,
    SuccessorTracker,
    evaluate_successor_misses,
)
from repro.traces.events import Trace
from repro.traces.filters import cache_filtered

#: Small alphabets make collisions (hits, repeats) likely.
keys = st.text(alphabet="abcdefgh", min_size=1, max_size=2)
sequences = st.lists(keys, min_size=0, max_size=300)
capacities = st.integers(min_value=1, max_value=12)


class TestCacheInvariants:
    @given(sequence=sequences, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_lru_never_exceeds_capacity_and_counts_balance(self, sequence, capacity):
        cache = LRUCache(capacity)
        for key in sequence:
            cache.access(key)
        assert len(cache) <= capacity
        assert cache.stats.hits + cache.stats.misses == len(sequence)

    @given(
        sequence=sequences,
        capacity=capacities,
        policy=st.sampled_from(sorted(POLICIES)),
    )
    @settings(max_examples=60, deadline=None)
    def test_every_policy_respects_capacity(self, sequence, capacity, policy):
        cache = make_cache(policy, capacity)
        for key in sequence:
            cache.access(key)
        assert len(cache) <= capacity
        assert cache.stats.accesses == len(sequence)

    @given(sequence=sequences, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_access_after_miss_is_hit(self, sequence, capacity):
        cache = LRUCache(capacity)
        for key in sequence:
            if not cache.access(key):
                # The key was just admitted at MRU: an immediate
                # re-access must hit.
                assert cache.access(key) is True

    @given(sequence=sequences, capacity=capacities, group=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_aggregating_cache_capacity_and_accounting(
        self, sequence, capacity, group
    ):
        cache = AggregatingClientCache(capacity=capacity, group_size=group)
        for key in sequence:
            cache.access(key)
        assert len(cache) <= capacity
        assert cache.stats.accesses == len(sequence)
        assert cache.fetch_log.group_fetches == cache.stats.misses
        assert cache.fetch_log.files_retrieved >= cache.fetch_log.group_fetches

    @given(sequence=sequences, capacity=capacities)
    @settings(max_examples=40, deadline=None)
    def test_larger_lru_never_misses_more(self, sequence, capacity):
        # LRU's inclusion property: a larger LRU cache contains the
        # smaller one's residents, so misses are monotone in capacity.
        small = LRUCache(capacity)
        large = LRUCache(capacity + 3)
        for key in sequence:
            small.access(key)
            large.access(key)
        assert large.stats.misses <= small.stats.misses


class TestFilterInvariants:
    @given(sequence=sequences, capacity=capacities)
    @settings(max_examples=50, deadline=None)
    def test_filtered_stream_is_subsequence_of_miss_count(self, sequence, capacity):
        trace = Trace.from_file_ids(sequence)
        cache = LRUCache(capacity)
        filtered = cache_filtered(trace, cache)
        assert len(filtered) == cache.stats.misses
        assert len(filtered) <= len(trace)

    @given(sequence=sequences)
    @settings(max_examples=50, deadline=None)
    def test_filter_capacity_one_removes_exactly_immediate_repeats(self, sequence):
        trace = Trace.from_file_ids(sequence)
        filtered = cache_filtered(trace, LRUCache(1)).file_ids()
        expected = [
            key
            for index, key in enumerate(sequence)
            if index == 0 or sequence[index - 1] != key
        ]
        assert filtered == expected


class TestSuccessorInvariants:
    @given(sequence=sequences, capacity=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_lru_list_bounded_and_most_recent_first(self, sequence, capacity):
        slist = LRUSuccessorList(capacity)
        for key in sequence:
            slist.observe(key)
        assert len(slist) <= capacity
        if sequence:
            assert slist.most_likely() == sequence[-1]

    @given(sequence=sequences, capacity=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_lfu_list_bounded_and_counts_positive(self, sequence, capacity):
        slist = LFUSuccessorList(capacity)
        for key in sequence:
            slist.observe(key)
        assert len(slist) <= capacity
        for successor in slist.predict():
            assert slist.count_of(successor) >= 1

    @given(sequence=sequences)
    @settings(max_examples=50, deadline=None)
    def test_oracle_never_worse_than_bounded_policies(self, sequence):
        oracle = evaluate_successor_misses(sequence, "oracle", 1).misses
        for policy in ("lru", "lfu"):
            bounded = evaluate_successor_misses(sequence, policy, 2).misses
            assert bounded >= oracle

    @given(sequence=sequences, capacity=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_miss_probability_in_unit_interval(self, sequence, capacity):
        report = evaluate_successor_misses(sequence, "lru", capacity)
        assert 0.0 <= report.miss_probability <= 1.0
        assert report.misses <= report.opportunities


class TestGroupInvariants:
    @given(sequence=sequences, group=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_groups_bounded_unique_and_seeded(self, sequence, group):
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(sequence)
        builder = GroupBuilder(tracker, group)
        for seed in set(sequence) or {"x"}:
            built = builder.build(seed)
            assert 1 <= len(built) <= group
            assert built.demanded == seed
            assert len(set(built.members)) == len(built.members)

    @given(sequence=sequences)
    @settings(max_examples=30, deadline=None)
    def test_group_members_are_observed_files_or_seed(self, sequence):
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(sequence)
        builder = GroupBuilder(tracker, 5)
        observed = set(sequence)
        built = builder.build("seed-file")
        for member in built.predicted:
            assert member in observed


class TestEntropyInvariants:
    @given(sequence=sequences)
    @settings(max_examples=50, deadline=None)
    def test_entropy_nonnegative_and_bounded(self, sequence):
        value = successor_entropy(sequence)
        assert value >= 0.0
        if sequence:
            # Crude upper bound: log2 of the number of events.
            assert value <= math.log2(len(sequence) + 1) + 1

    @given(sequence=sequences)
    @settings(max_examples=50, deadline=None)
    def test_breakdown_consistent_with_value(self, sequence):
        breakdown = successor_entropy_breakdown(sequence)
        recomputed = sum(w * h for w, h in breakdown.per_file.values())
        assert breakdown.value == recomputed

    @given(sequence=st.lists(keys, min_size=2, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_weights_are_fractions_of_events(self, sequence):
        breakdown = successor_entropy_breakdown(sequence)
        for weight, _ in breakdown.per_file.values():
            assert 0.0 < weight <= 1.0
        assert sum(w for w, _ in breakdown.per_file.values()) <= 1.0 + 1e-9

    @given(block=st.lists(keys, min_size=2, max_size=20, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_cycles_have_zero_entropy(self, block):
        sequence = block * 10
        assert successor_entropy(sequence) < 1e-9


class TestTraceRoundTripProperty:
    @given(sequence=sequences)
    @settings(max_examples=50, deadline=None)
    def test_write_read_round_trip(self, sequence):
        import io

        from repro.traces.reader import read_trace
        from repro.traces.writer import write_trace

        trace = Trace.from_file_ids(sequence, name="prop")
        buffer = io.StringIO()
        write_trace(trace, buffer)
        recovered = read_trace(io.StringIO(buffer.getvalue()))
        assert recovered.file_ids() == sequence


class TestStackDistanceProperties:
    @given(sequence=sequences, capacity=capacities)
    @settings(max_examples=50, deadline=None)
    def test_mattson_agrees_with_replay_everywhere(self, sequence, capacity):
        from repro.caching.stack_distance import miss_curve

        cache = LRUCache(capacity)
        for key in sequence:
            cache.access(key)
        curve = miss_curve(sequence, [capacity]) if sequence else {capacity: 0}
        assert curve[capacity] == cache.stats.misses

    @given(sequence=sequences)
    @settings(max_examples=50, deadline=None)
    def test_distances_bounded_by_distinct_files(self, sequence):
        from repro.caching.stack_distance import COLD, stack_distances

        distinct = len(set(sequence))
        for distance in stack_distances(sequence):
            assert distance == COLD or 1 <= distance <= distinct
