"""Unit tests for cooperative peer caching."""

import pytest

from repro.errors import SimulationError
from repro.experiments import run_peer_caching
from repro.sim.cooperative import PeerMetrics, PeerNetwork
from repro.traces.events import Trace, TraceEvent


class TestPeerMetrics:
    def test_rates_sum_to_one(self):
        metrics = PeerMetrics(local_hits=5, peer_hits=3, server_fetches=2)
        assert metrics.accesses == 10
        total = (
            metrics.local_hit_rate
            + metrics.peer_hit_rate
            + metrics.server_fetch_rate
        )
        assert total == pytest.approx(1.0)

    def test_empty(self):
        metrics = PeerMetrics()
        assert metrics.local_hit_rate == 0.0
        assert metrics.server_fetch_rate == 0.0


class TestPeerNetwork:
    def test_rejects_bad_capacity(self):
        with pytest.raises(SimulationError):
            PeerNetwork(client_capacity=0)

    def test_local_hit(self):
        network = PeerNetwork(client_capacity=4)
        network.access("c1", "a")
        assert network.access("c1", "a") == "local"

    def test_peer_hit_on_shared_file(self):
        network = PeerNetwork(client_capacity=4)
        assert network.access("c1", "shared") == "server"
        assert network.access("c2", "shared") == "peer"

    def test_peer_hit_copies_to_requester(self):
        network = PeerNetwork(client_capacity=4)
        network.access("c1", "shared")
        network.access("c2", "shared")
        # The copy is now local at c2.
        assert network.access("c2", "shared") == "local"

    def test_peer_lookup_does_not_promote_at_peer(self):
        network = PeerNetwork(client_capacity=2)
        network.access("c1", "a")
        network.access("c1", "b")
        # c2 pulls 'a' from c1; at c1, 'a' must remain the LRU victim.
        network.access("c2", "a")
        assert network.clients["c1"].victim() == "a"

    def test_sharing_disabled_goes_to_server(self):
        network = PeerNetwork(client_capacity=4, peer_sharing=False)
        network.access("c1", "shared")
        assert network.access("c2", "shared") == "server"

    def test_grouping_prefetches_into_requester(self):
        network = PeerNetwork(client_capacity=10, group_size=3, peer_sharing=False)
        for _ in range(2):
            for key in ["x", "y", "z"]:
                network.access("c1", key)
        # Evict the chain locally, then resume: the group rides along.
        for i in range(12):
            network.access("c1", f"junk{i}")
        network.access("c1", "x")
        assert network.access("c1", "y") == "local"

    def test_replay_uses_client_ids(self):
        trace = Trace()
        trace.append(TraceEvent("a", client_id="east"))
        trace.append(TraceEvent("a", client_id="west"))
        network = PeerNetwork(client_capacity=4)
        metrics = network.replay(trace)
        assert metrics.accesses == 2
        assert metrics.peer_hits == 1

    def test_grouping_reduces_server_fetches(self):
        chain = [f"f{i}" for i in range(30)]
        trace = Trace()
        for _ in range(6):
            for key in chain:
                trace.append(TraceEvent(key, client_id="c1"))
        plain = PeerNetwork(client_capacity=15, group_size=1)
        grouped = PeerNetwork(client_capacity=15, group_size=5)
        plain_metrics = plain.replay(trace)
        grouped_metrics = grouped.replay(trace)
        assert grouped_metrics.server_fetches < plain_metrics.server_fetches


class TestRunPeerCaching:
    @pytest.fixture(scope="class")
    def figure(self):
        return run_peer_caching(events=8000, group_sizes=(1, 5))

    def test_structure(self, figure):
        assert figure.labels() == ["no-peers", "with-peers"]
        assert figure.x_values() == [1.0, 5.0]

    def test_peers_reduce_server_fetches(self, figure):
        for x in (1.0, 5.0):
            assert figure.get_series("with-peers").y_at(x) <= figure.get_series(
                "no-peers"
            ).y_at(x)

    def test_grouping_helps_in_both_settings(self, figure):
        for label in ("no-peers", "with-peers"):
            series = figure.get_series(label)
            assert series.y_at(5.0) <= series.y_at(1.0)

    def test_rejects_bad_parameters(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_peer_caching(events=4000, group_sizes=())
        with pytest.raises(ExperimentError):
            run_peer_caching(events=4000, client_capacity=0)
