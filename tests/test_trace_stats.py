"""Unit tests for trace summary statistics."""

import math
from collections import Counter

import pytest

from repro.traces.events import EventKind, Trace
from repro.traces.stats import (
    access_counts,
    entropy_of_counts,
    interreference_distances,
    last_successor_repeat_rate,
    popularity_gini,
    summarize,
    working_set_sizes,
)


class TestAccessCounts:
    def test_counts(self):
        trace = Trace.from_file_ids(["a", "b", "a"])
        assert access_counts(trace) == Counter({"a": 2, "b": 1})


class TestPopularityGini:
    def test_uniform_is_zero(self):
        assert popularity_gini(Counter({"a": 5, "b": 5, "c": 5})) == pytest.approx(0.0)

    def test_skewed_is_positive(self):
        skewed = popularity_gini(Counter({"a": 100, "b": 1, "c": 1}))
        assert skewed > 0.5

    def test_empty_is_zero(self):
        assert popularity_gini(Counter()) == 0.0

    def test_bounded_below_one(self):
        counts = Counter({f"f{i}": 1 for i in range(99)})
        counts["hot"] = 10_000
        assert 0.0 < popularity_gini(counts) < 1.0


class TestLastSuccessorRepeatRate:
    def test_perfectly_repetitive(self):
        trace = Trace.from_file_ids(["a", "b"] * 10)
        # After the first a->b and b->a, every prediction is correct.
        assert last_successor_repeat_rate(trace) == pytest.approx(1.0)

    def test_never_repeats(self):
        trace = Trace.from_file_ids(["a", "b", "a", "c", "a", "d", "a", "e"])
        # 'a' changes successor every time.
        assert last_successor_repeat_rate(trace) < 0.5

    def test_short_trace_is_zero(self):
        assert last_successor_repeat_rate(Trace.from_file_ids(["a", "b"])) == 0.0


class TestSummarize:
    def test_basic_fields(self, mixed_trace):
        summary = summarize(mixed_trace)
        assert summary.events == 7
        assert summary.unique_files == 4
        assert summary.open_events == 2
        assert summary.mutation_events == 3
        assert summary.clients == 2

    def test_single_access_files(self):
        trace = Trace.from_file_ids(["a", "a", "b", "c"])
        summary = summarize(trace)
        assert summary.single_access_files == 2
        assert summary.repeat_fraction == pytest.approx(0.5)

    def test_write_fraction(self):
        trace = Trace()
        trace.extend(
            [
                Trace.from_file_ids(["a"], kind=EventKind.WRITE)[0],
                Trace.from_file_ids(["b"])[0],
            ]
        )
        assert summarize(trace).write_fraction == pytest.approx(0.5)

    def test_as_rows_shape(self, mixed_trace):
        rows = summarize(mixed_trace).as_rows()
        assert all(len(row) == 2 for row in rows)
        assert rows[0] == ("trace", "mixed")

    def test_empty_trace(self):
        summary = summarize(Trace())
        assert summary.events == 0
        assert summary.repeat_fraction == 0.0
        assert summary.top_file_share == 0.0


class TestWorkingSetSizes:
    def test_windows(self):
        trace = Trace.from_file_ids(["a", "a", "b", "b", "c", "c"])
        assert working_set_sizes(trace, 2) == [1, 1, 1]
        assert working_set_sizes(trace, 3) == [2, 2]

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            working_set_sizes(Trace(), 0)


class TestInterreferenceDistances:
    def test_distances(self):
        trace = Trace.from_file_ids(["a", "b", "a", "c", "a"])
        assert interreference_distances(trace) == [2, 2]

    def test_limit(self):
        trace = Trace.from_file_ids(["a"] * 10)
        assert len(interreference_distances(trace, limit=3)) == 3

    def test_no_repeats(self):
        trace = Trace.from_file_ids(["a", "b", "c"])
        assert interreference_distances(trace) == []


class TestEntropyOfCounts:
    def test_uniform(self):
        assert entropy_of_counts(Counter({"a": 1, "b": 1})) == pytest.approx(1.0)

    def test_deterministic(self):
        assert entropy_of_counts(Counter({"a": 10})) == pytest.approx(0.0)

    def test_empty(self):
        assert entropy_of_counts(Counter()) == 0.0

    def test_matches_formula(self):
        counts = Counter({"a": 3, "b": 1})
        expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
        assert entropy_of_counts(counts) == pytest.approx(expected)
