"""Equivalence tests for the inlined replay fast paths.

The engine and the aggregating client cache both carry specialized
replay loops (optionally over interned integer codes).  These tests
lock in the contract: the fast loops — string-keyed and interned — are
count-for-count identical to driving the generic per-event ``access``
path, across all four synthetic workloads.
"""

import pytest

from repro.core.aggregating_cache import AggregatingClientCache
from repro.experiments.common import workload_sequence, workload_trace
from repro.sim.engine import DistributedFileSystem

WORKLOADS = ("server", "users", "write", "workstation")
EVENTS = 4000


def generic_engine_metrics(system, trace):
    """Reference replay: per-event access() calls, no fast loop."""
    for event in trace:
        client = event.client_id or "client00"
        system.access(client, event.file_id)
    return system.metrics()


def metrics_equal(left, right):
    return (
        {k: v for k, v in left.client_stats.items()}
        == {k: v for k, v in right.client_stats.items()}
        and left.server_stats == right.server_stats
        and left.store_fetches == right.store_fetches
        and left.store_group_fetches == right.store_group_fetches
        and left.remote_requests == right.remote_requests
        and left.metadata_entries == right.metadata_entries
        and left.invalidations == right.invalidations
    )


class TestEngineFastReplay:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_fast_replay_matches_generic(self, workload):
        trace = workload_trace(workload, EVENTS)
        config = dict(client_capacity=250, server_capacity=300, group_size=5)
        reference = generic_engine_metrics(
            DistributedFileSystem(**config), trace
        )
        fast = DistributedFileSystem(**config).replay(trace)
        assert metrics_equal(fast, reference)

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_interned_replay_identical_metrics(self, workload):
        trace = workload_trace(workload, EVENTS)
        config = dict(client_capacity=250, server_capacity=300, group_size=5)
        reference = DistributedFileSystem(**config).replay(trace)
        interned = DistributedFileSystem(**config).replay(trace, intern=True)
        assert metrics_equal(interned, reference)

    def test_no_server_and_uncooperative_configs(self):
        trace = workload_trace("server", EVENTS)
        for config in (
            dict(client_capacity=200, server_capacity=0, group_size=5),
            dict(client_capacity=200, server_capacity=150, group_size=3,
                 cooperative=False),
            dict(client_capacity=200, server_capacity=0, group_size=1,
                 cooperative=False),
        ):
            reference = generic_engine_metrics(
                DistributedFileSystem(**config), trace
            )
            fast = DistributedFileSystem(**config).replay(trace)
            interned = DistributedFileSystem(**config).replay(trace, intern=True)
            assert metrics_equal(fast, reference), config
            assert metrics_equal(interned, reference), config

    def test_string_replay_keeps_string_residency(self):
        trace = workload_trace("server", EVENTS)
        system = DistributedFileSystem(client_capacity=50, server_capacity=0)
        system.replay(trace)
        cache = next(iter(system.clients.values()))
        assert all(isinstance(key, str) for key in cache.keys())

    def test_hybrid_policy_takes_generic_path(self):
        # Non-LRU successor lists are outside the fast loop's contract;
        # replay must still work (via the generic path) and count sanely.
        trace = workload_trace("server", EVENTS)
        system = DistributedFileSystem(
            client_capacity=100, successor_policy="hybrid"
        )
        assert not system._fast_replay_ok()
        metrics = system.replay(trace)
        assert metrics.total_client_accesses == EVENTS

    def test_invalidate_on_write_takes_generic_path(self):
        trace = workload_trace("write", EVENTS)
        config = dict(client_capacity=100, invalidate_on_write=True)
        assert not DistributedFileSystem(**config)._fast_replay_ok()
        reference = DistributedFileSystem(**config)
        for event in trace:
            client = event.client_id or "client00"
            reference.access(client, event.file_id)
            if event.is_mutation:
                reference.process_mutation(client, event)
        fast = DistributedFileSystem(**config).replay(trace)
        interned = DistributedFileSystem(**config).replay(trace, intern=True)
        assert metrics_equal(fast, reference.metrics())
        assert metrics_equal(interned, reference.metrics())


class TestAggregatingFastReplay:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_fast_replay_matches_generic(self, workload):
        sequence = workload_sequence(workload, EVENTS)
        reference = AggregatingClientCache(capacity=250, group_size=5)
        for file_id in sequence:
            reference.access(file_id)
        fast = AggregatingClientCache(capacity=250, group_size=5)
        fast.replay(sequence)
        interned = AggregatingClientCache(capacity=250, group_size=5)
        interned.replay(sequence, intern=True)
        for candidate in (fast, interned):
            assert candidate.stats == reference.stats
            assert (
                candidate.fetch_log.__dict__ == reference.fetch_log.__dict__
            )
            assert (
                candidate.tracker.metadata_entries()
                == reference.tracker.metadata_entries()
            )
        # The string-keyed fast path also preserves exact residency.
        assert list(fast.resident_files()) == list(reference.resident_files())

    def test_subclass_takes_generic_path(self):
        class Instrumented(AggregatingClientCache):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.installed_batches = 0

            def _install_companions(self, companions):
                self.installed_batches += 1
                return super()._install_companions(companions)

        sequence = workload_sequence("server", EVENTS)
        cache = Instrumented(capacity=100, group_size=5)
        assert not cache._fast_replay_ok()
        cache.replay(sequence)
        assert cache.installed_batches == cache.stats.misses
