"""Unit tests for successor entropy (Equation 2)."""


import pytest

from repro.core.entropy import (
    entropy_profile,
    filtered_entropy_profile,
    perplexity,
    successor_entropy,
    successor_entropy_breakdown,
)
from repro.errors import AnalysisError
from repro.traces.events import Trace


class TestSuccessorEntropy:
    def test_deterministic_cycle_is_zero(self):
        sequence = ["a", "b", "c"] * 20
        assert successor_entropy(sequence) == pytest.approx(0.0, abs=1e-9)

    def test_two_equally_likely_successors_is_weighted_one_bit(self):
        # 'a' alternates successors b and c; b and c always return to a.
        sequence = ["a", "b", "a", "c"] * 25
        breakdown = successor_entropy_breakdown(sequence)
        weight_a, entropy_a = breakdown.per_file["a"]
        assert entropy_a == pytest.approx(1.0, abs=0.01)
        assert weight_a == pytest.approx(0.5, abs=0.01)
        # b and c are deterministic: total = 0.5 * 1 bit.
        assert breakdown.value == pytest.approx(0.5, abs=0.02)

    def test_excludes_single_occurrence_files(self):
        # A non-repeating stream must NOT look predictable.
        sequence = [f"unique{i}" for i in range(100)]
        assert successor_entropy(sequence) == 0.0
        breakdown = successor_entropy_breakdown(sequence)
        assert breakdown.included_files == 0
        assert breakdown.excluded_files == 100

    def test_single_occurrence_weight_not_renormalized(self):
        # Half the mass is single-occurrence files: the weighted sum
        # keeps their weight out rather than inflating repeating files.
        repeating = ["a", "b"] * 25  # 50 events, perfectly alternating
        noise = [f"u{i}" for i in range(50)]
        interleaved = []
        for pair, unique in zip(zip(repeating[::2], repeating[1::2]), noise):
            interleaved.extend(pair)
            interleaved.append(unique)
        value = successor_entropy(interleaved)
        # a's successors now include unique files (entropy > 0), but the
        # unique files themselves contribute no terms.
        breakdown = successor_entropy_breakdown(interleaved)
        assert all(f in ("a", "b") for f in breakdown.per_file)
        assert value > 0.0

    def test_empty_and_tiny_sequences(self):
        assert successor_entropy([]) == 0.0
        assert successor_entropy(["a"]) == 0.0
        assert successor_entropy(["a", "a"]) == pytest.approx(0.0)

    def test_rejects_bad_length(self):
        with pytest.raises(AnalysisError):
            successor_entropy(["a", "b"], symbol_length=0)

    def test_uniform_random_approaches_log2(self):
        import random

        rng = random.Random(5)
        symbols = [f"s{i}" for i in range(8)]
        sequence = [symbols[rng.randrange(8)] for _ in range(20000)]
        value = successor_entropy(sequence)
        assert value == pytest.approx(3.0, abs=0.05)


class TestSymbolLength:
    def test_monotone_for_stochastic_source(self):
        import random

        rng = random.Random(11)
        # A noisy cycle: mostly deterministic with 20% jumps.
        files = [f"f{i}" for i in range(10)]
        sequence = []
        position = 0
        for _ in range(5000):
            sequence.append(files[position])
            if rng.random() < 0.2:
                position = rng.randrange(10)
            else:
                position = (position + 1) % 10
        values = [successor_entropy(sequence, L) for L in (1, 2, 4, 8)]
        assert values == sorted(values)

    def test_deterministic_stays_zero_at_all_lengths(self):
        sequence = ["a", "b", "c", "d"] * 50
        for length in (1, 2, 5, 10):
            assert successor_entropy(sequence, length) == pytest.approx(0.0, abs=1e-9)

    def test_figure6_example_tracks_sequences(self, abc_trace):
        # The Figure 6 sequence: tracking length-1 vs length-4 symbols
        # must both be computable and non-negative.
        seq = abc_trace.file_ids()
        h1 = successor_entropy(seq, 1)
        h4 = successor_entropy(seq, 4)
        assert h1 >= 0.0
        assert h4 >= 0.0

    def test_entropy_profile(self):
        sequence = ["a", "b", "a", "c"] * 25
        profile = entropy_profile(sequence, [1, 2, 3])
        assert [length for length, _ in profile] == [1, 2, 3]
        assert all(value >= 0 for _, value in profile)


class TestFilteredEntropy:
    def test_large_filter_reduces_entropy_of_cyclic_noise(self):
        import random

        rng = random.Random(3)
        # Noisy loops over a small working set: a large filter absorbs
        # the noise-dominated repeats, leaving orderly first-touches.
        files = [f"f{i}" for i in range(30)]
        sequence = []
        position = 0
        for _ in range(6000):
            sequence.append(files[position])
            position = (position + 1) % 30 if rng.random() < 0.7 else rng.randrange(30)
        trace = Trace.from_file_ids(sequence)
        unfiltered = successor_entropy(sequence)
        heavily_filtered = filtered_entropy_profile(trace, 100, [1])[0][1]
        assert heavily_filtered < unfiltered

    def test_rejects_bad_filter(self):
        trace = Trace.from_file_ids(["a", "b"])
        with pytest.raises(AnalysisError):
            filtered_entropy_profile(trace, 0, [1])

    def test_profile_shape(self):
        trace = Trace.from_file_ids(["a", "b", "c"] * 50)
        profile = filtered_entropy_profile(trace, 2, [1, 2])
        assert len(profile) == 2


class TestBreakdownAndPerplexity:
    def test_top_contributors_ordering(self):
        sequence = ["a", "b", "a", "c"] * 25 + ["x", "y"] * 25
        breakdown = successor_entropy_breakdown(sequence)
        contributors = breakdown.top_contributors(2)
        assert contributors[0][0] == "a"
        assert contributors[0][1] >= contributors[1][1]

    def test_perplexity(self):
        assert perplexity(0.0) == 1.0
        assert perplexity(1.0) == 2.0
        assert perplexity(3.0) == 8.0
