"""Unit tests for the full-evaluation report generator."""

import pytest

from repro.analysis.report import build_report, default_sections, write_report
from repro.analysis.series import FigureData
from repro.errors import AnalysisError


def tiny_sections():
    """One fast synthetic section to keep report tests quick."""

    def build():
        figure = FigureData("t", "Tiny section", "x", "y")
        series = figure.add_series("s")
        series.add(1, 2)
        series.add(3, 4)
        return figure

    return [("tiny", build)]


class TestBuildReport:
    def test_structure_with_custom_sections(self):
        text = build_report(events=2500, sections=tiny_sections())
        assert text.startswith("# Full evaluation report")
        assert "## Headline claims" in text
        assert "## Tiny section" in text
        assert "| x | s |" in text

    def test_engine_paths_section_reports_dispatch(self):
        text = build_report(events=2500, sections=tiny_sections())
        assert "## Replay engine paths" in text
        # 2500 events is above the array kernel's size floor, so the
        # columnar row must show the v2 dispatch; the event-trace row
        # stays on the string-keyed fused loop.
        assert "| columnar trace | kernel_v2 | 2500 |" in text
        assert "| event trace | fast | 2500 |" in text

    def test_charts_toggle(self):
        with_charts = build_report(events=2500, sections=tiny_sections())
        without = build_report(events=2500, sections=tiny_sections(), charts=False)
        assert "```" in with_charts
        assert "```" not in without

    def test_progress_callback(self):
        seen = []
        build_report(
            events=2500, sections=tiny_sections(), progress=seen.append
        )
        assert seen == ["headline", "engine-paths", "tiny"]

    def test_rejects_bad_events(self):
        with pytest.raises(AnalysisError):
            build_report(events=0)

    def test_drift_flag_appends_drift_section(self):
        seen = []
        text = build_report(
            events=2500,
            sections=tiny_sections(),
            drift=True,
            progress=seen.append,
        )
        assert "## Workload drift (windowed telemetry)" in text
        assert "drift" in seen

    def test_default_sections_cover_every_figure(self):
        ids = [section_id for section_id, _ in default_sections(1000)]
        for expected in ("fig3-server", "fig4-users", "fig5-workstation",
                         "fig7", "fig8-write", "placement", "hoarding",
                         "attribution", "peer-caching"):
            assert expected in ids


class TestProvenanceDisabledNote:
    def test_rows_dashed_when_obs_disabled(self, monkeypatch):
        from repro.analysis.report import provenance_rows
        from repro.obs import registry as obs_registry

        # If the master switch never comes on, the traced replay emits
        # nothing — the table must dash the row, not print zeros.
        monkeypatch.setattr(obs_registry, "enable", lambda: None)
        rows = provenance_rows(events=500, workloads=("server",))
        assert rows[1] == ["server", "-", "-", "-", "-", "-"]

    def test_section_explains_dashes(self, monkeypatch):
        from repro.analysis.report import _provenance_section
        from repro.obs import registry as obs_registry

        monkeypatch.setattr(obs_registry, "enable", lambda: None)
        section = _provenance_section(events=500)
        assert "metric collection was disabled" in section

    def test_rows_populated_when_obs_enabled(self):
        from repro.analysis.report import provenance_rows

        rows = provenance_rows(events=500, workloads=("server",))
        assert rows[1][0] == "server"
        assert rows[1][1] != "-"


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(
            tmp_path / "report.md", events=2500, sections=tiny_sections()
        )
        assert path.exists()
        assert "Tiny section" in path.read_text()
