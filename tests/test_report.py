"""Unit tests for the full-evaluation report generator."""

import pytest

from repro.analysis.report import build_report, default_sections, write_report
from repro.analysis.series import FigureData
from repro.errors import AnalysisError


def tiny_sections():
    """One fast synthetic section to keep report tests quick."""

    def build():
        figure = FigureData("t", "Tiny section", "x", "y")
        series = figure.add_series("s")
        series.add(1, 2)
        series.add(3, 4)
        return figure

    return [("tiny", build)]


class TestBuildReport:
    def test_structure_with_custom_sections(self):
        text = build_report(events=2500, sections=tiny_sections())
        assert text.startswith("# Full evaluation report")
        assert "## Headline claims" in text
        assert "## Tiny section" in text
        assert "| x | s |" in text

    def test_charts_toggle(self):
        with_charts = build_report(events=2500, sections=tiny_sections())
        without = build_report(events=2500, sections=tiny_sections(), charts=False)
        assert "```" in with_charts
        assert "```" not in without

    def test_progress_callback(self):
        seen = []
        build_report(
            events=2500, sections=tiny_sections(), progress=seen.append
        )
        assert seen == ["headline", "tiny"]

    def test_rejects_bad_events(self):
        with pytest.raises(AnalysisError):
            build_report(events=0)

    def test_default_sections_cover_every_figure(self):
        ids = [section_id for section_id, _ in default_sections(1000)]
        for expected in ("fig3-server", "fig4-users", "fig5-workstation",
                         "fig7", "fig8-write", "placement", "hoarding",
                         "attribution", "peer-caching"):
            assert expected in ids


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = write_report(
            tmp_path / "report.md", events=2500, sections=tiny_sections()
        )
        assert path.exists()
        assert "Tiny section" in path.read_text()
