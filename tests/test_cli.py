"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_commands_registered(self):
        parser = build_parser()
        for command in ("fig3", "fig4", "fig5", "fig7", "fig8", "headline"):
            args = parser.parse_args([command])
            assert callable(args.handler)

    def test_workload_choices_enforced(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig3", "--workload", "cray"])


class TestMain:
    def test_fig5_runs(self, capsys):
        code = main(["fig5", "--workload", "server", "--events", "2500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "Oracle" in out
        assert "| Number of Successors |" in out

    def test_fig7_runs(self, capsys):
        code = main(["fig7", "--events", "2500"])
        assert code == 0
        assert "successor entropy" in capsys.readouterr().out.lower()

    def test_fig3_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig3.csv"
        code = main(
            [
                "fig3",
                "--workload",
                "server",
                "--events",
                "2500",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert csv_path.read_text().startswith("Cache Capacity")

    def test_headline_runs(self, capsys):
        code = main(["headline", "--events", "2500"])
        assert code == 0
        assert "claim" in capsys.readouterr().out

    def test_generate_and_inspect(self, capsys, tmp_path):
        trace_path = tmp_path / "server.trace"
        code = main(
            [
                "generate",
                "--workload",
                "server",
                "--events",
                "1000",
                "--out",
                str(trace_path),
            ]
        )
        assert code == 0
        assert trace_path.exists()
        code = main(["inspect", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "| events | 1000 |" in out

    def test_inspect_missing_file(self, capsys):
        with pytest.raises(FileNotFoundError):
            main(["inspect", "/nonexistent/trace.txt"])

    def test_placement_runs(self, capsys):
        code = main(["placement", "--workload", "server", "--events", "2500"])
        assert code == 0
        assert "Mean Seek Distance" in capsys.readouterr().out

    def test_hoard_runs(self, capsys):
        code = main(["hoard", "--workload", "server", "--events", "4000"])
        assert code == 0
        assert "group-closure" in capsys.readouterr().out

    def test_cooperation_runs(self, capsys):
        code = main(["cooperation", "--workload", "server", "--events", "2500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cooperative" in out
        assert "filtered" in out

    def test_profile_workload(self, capsys):
        code = main(["profile", "--workload", "server", "--events", "2500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "predictability profile" in out
        assert "bits" in out

    def test_profile_trace_file(self, capsys, tmp_path):
        trace_path = tmp_path / "t.trace"
        main(
            [
                "generate",
                "--workload",
                "workstation",
                "--events",
                "2000",
                "--out",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        code = main(["profile", "--trace", str(trace_path)])
        assert code == 0
        assert "predictability profile" in capsys.readouterr().out

    def test_error_reporting(self, capsys, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_text("frobnicate x\n", encoding="utf-8")
        code = main(["inspect", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestCompareAndAnonymize:
    def test_compare_runs(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "server",
                "--events",
                "3000",
                "--capacity",
                "150",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregating g5" in out
        assert "| lru |" in out

    def test_anonymize_keyed(self, capsys, tmp_path):
        source = tmp_path / "raw.trace"
        target = tmp_path / "anon.trace"
        main(
            [
                "generate",
                "--workload",
                "server",
                "--events",
                "500",
                "--out",
                str(source),
            ]
        )
        capsys.readouterr()
        code = main(["anonymize", str(source), "--out", str(target), "--key", "k"])
        assert code == 0
        assert target.exists()
        assert "server/" not in target.read_text().splitlines()[5]

    def test_anonymize_enumerated(self, capsys, tmp_path):
        source = tmp_path / "raw.trace"
        target = tmp_path / "enum.trace"
        main(
            [
                "generate",
                "--workload",
                "users",
                "--events",
                "500",
                "--out",
                str(source),
            ]
        )
        capsys.readouterr()
        code = main(["anonymize", str(source), "--out", str(target)])
        assert code == 0
        assert "enumeration" in capsys.readouterr().out


class TestWorkloadsCommand:
    def test_catalog_table(self, capsys):
        code = main(["workloads"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mozart" in out
        assert "barber" in out

    def test_single_workload_detail(self, capsys):
        code = main(["workloads", "server"])
        assert code == 0
        out = capsys.readouterr().out
        assert "calibration targets" in out

    def test_unknown_workload_errors(self, capsys):
        code = main(["workloads", "vax"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestGraphAndReportCommands:
    def test_graph_runs(self, capsys):
        code = main(["graph", "--workload", "server", "--events", "2500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "relationship graph" in out
        assert "hub files" in out
        assert "covering set" in out

    def test_report_command_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["report", "--events", "2500"])
        assert callable(args.handler)

    def test_report_drift_flag_registered(self):
        args = build_parser().parse_args(["report", "--drift"])
        assert args.drift is True


class TestTimeseriesCommands:
    def test_metrics_windowed_exports_ts_jsonl(self, capsys, tmp_path):
        from repro.obs import load_ts_jsonl

        path = tmp_path / "series.jsonl"
        code = main(
            [
                "metrics",
                "--workload",
                "server",
                "--events",
                "3000",
                "--window",
                "500",
                "--ts-out",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "windowed series: 6 windows of 500 events" in out
        assert "hit ratio" in out
        assert f"wrote 7 repro.ts/1 JSONL lines to {path}" in out
        loaded = load_ts_jsonl(path)
        assert loaded["meta"]["workload"] == "server"
        assert len(loaded["samples"]) == 6

    def test_metrics_baselines_note_when_obs_disabled(self, capsys, monkeypatch):
        # If the master switch never comes on, the baseline table would
        # be all zeros; the command must say so instead.
        from repro.obs import registry as obs_registry

        monkeypatch.setattr(obs_registry, "enable", lambda: None)
        code = main(
            [
                "metrics",
                "--workload",
                "server",
                "--events",
                "1000",
                "--baselines",
                "lru",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "metric collection was disabled" in out
        assert "baseline lru" not in out

    def test_top_plain_replay(self, capsys, tmp_path):
        path = tmp_path / "top.jsonl"
        code = main(
            [
                "top",
                "--workload",
                "server",
                "--events",
                "3000",
                "--window",
                "1000",
                "--plain",
                "--ts-out",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "window 1/3" in out
        assert "window 3/3" in out
        assert "hit=" in out
        assert "ev/s=" in out
        assert path.exists()

    def test_top_sweep_plain_with_workers(self, capsys):
        code = main(
            [
                "top",
                "--sweep",
                "--workers",
                "2",
                "--workload",
                "server",
                "--events",
                "800",
                "--plain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "point 1/48" in out
        assert "point 48/48" in out
        assert "group_size=" in out

    def test_drift_steady_series(self, capsys, tmp_path):
        path = tmp_path / "series.jsonl"
        main(
            [
                "metrics",
                "--workload",
                "server",
                "--events",
                "3000",
                "--window",
                "500",
                "--ts-out",
                str(path),
            ]
        )
        capsys.readouterr()
        code = main(["drift", str(path), "--history", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "scanned 6 windows" in out
        assert "no drift detected" in out

    def test_drift_fail_on_drift_exits_2(self, capsys, tmp_path):
        from repro.obs import WindowSample, WindowedCollector, write_ts_jsonl

        collector = WindowedCollector(window=100)
        for index in range(16):
            hits = 90 if index < 10 else 0
            collector.append(
                WindowSample(
                    index=index,
                    start=index * 100,
                    events=100,
                    hits=hits,
                    misses=100 - hits,
                )
            )
        path = tmp_path / "shift.jsonl"
        write_ts_jsonl(collector, path)
        code = main(
            ["drift", str(path), "--history", "4", "--fail-on-drift"]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "hit_ratio collapsed at window 10 (event 1000)" in out
        assert "| hit_ratio |" in out

    def test_drift_replay_mode(self, capsys):
        code = main(
            [
                "drift",
                "--workload",
                "server",
                "--events",
                "3000",
                "--window",
                "500",
                "--history",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scanned 6 windows of server" in out

    def test_drift_rejects_bad_listen_free_of_charge(self):
        from repro.cli import _parse_listen
        from repro.errors import ReproError

        assert _parse_listen(":0") == ("127.0.0.1", 0)
        assert _parse_listen("0.0.0.0:9100") == ("0.0.0.0", 9100)
        with pytest.raises(ReproError):
            _parse_listen("9100")


class TestTraceTooling:
    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_pack_and_info_round_trip(self, capsys, tmp_path):
        text = tmp_path / "w.trace"
        packed = tmp_path / "w.ctrace"
        assert main(
            ["generate", "--workload", "write", "--events", "1500",
             "--out", str(text)]
        ) == 0
        assert main(["trace", "pack", str(text), str(packed)]) == 0
        out = capsys.readouterr().out
        assert "packed 1500 events" in out
        assert "repro-ctrace v1" in out
        assert packed.exists()

        assert main(["trace", "info", str(packed)]) == 0
        out = capsys.readouterr().out
        assert "| events | 1500 |" in out
        assert "| format | repro-ctrace |" in out
        assert "| version | 1 |" in out
        assert "column bytes (file)" in out

        # The packed file decodes back to the text trace exactly.
        from repro.traces.columnar import read_columnar
        from repro.traces.reader import read_trace

        assert read_columnar(packed).to_trace().events == read_trace(text).events

    def test_info_bench_times_every_kernel_path(self, capsys, tmp_path):
        text = tmp_path / "b.trace"
        packed = tmp_path / "b.ctrace"
        main(
            ["generate", "--workload", "server", "--events", "1200",
             "--out", str(text)]
        )
        main(["trace", "pack", str(text), str(packed)])
        capsys.readouterr()
        assert main(["trace", "info", str(packed), "--bench"]) == 0
        out = capsys.readouterr().out
        assert "| events | 1200 |" in out
        assert "| path | seconds | events/s |" in out
        assert "| scan |" in out
        assert "| kernel (dict LRU) |" in out
        assert "| kernel_v2 (array LRU) |" in out

    def test_info_bench_accepts_text_traces(self, capsys, tmp_path):
        text = tmp_path / "bt.trace"
        main(
            ["generate", "--workload", "users", "--events", "700",
             "--out", str(text)]
        )
        capsys.readouterr()
        assert main(["trace", "info", str(text), "--bench"]) == 0
        out = capsys.readouterr().out
        assert "unpacked text" in out
        assert "| kernel_v2 (array LRU) |" in out

    def test_info_accepts_text_traces(self, capsys, tmp_path):
        text = tmp_path / "s.trace"
        main(
            ["generate", "--workload", "server", "--events", "800",
             "--out", str(text)]
        )
        capsys.readouterr()
        assert main(["trace", "info", str(text)]) == 0
        out = capsys.readouterr().out
        assert "| events | 800 |" in out
        assert "unpacked text" in out

    def test_pack_repacks_columnar_input(self, capsys, tmp_path):
        text = tmp_path / "u.trace"
        first = tmp_path / "u1.ctrace"
        second = tmp_path / "u2.ctrace"
        main(
            ["generate", "--workload", "users", "--events", "600",
             "--out", str(text)]
        )
        main(["trace", "pack", str(text), str(first)])
        assert main(["trace", "pack", str(first), str(second)]) == 0
        assert second.read_bytes() == first.read_bytes()
