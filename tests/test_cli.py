"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_commands_registered(self):
        parser = build_parser()
        for command in ("fig3", "fig4", "fig5", "fig7", "fig8", "headline"):
            args = parser.parse_args([command])
            assert callable(args.handler)

    def test_workload_choices_enforced(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig3", "--workload", "cray"])


class TestMain:
    def test_fig5_runs(self, capsys):
        code = main(["fig5", "--workload", "server", "--events", "2500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "Oracle" in out
        assert "| Number of Successors |" in out

    def test_fig7_runs(self, capsys):
        code = main(["fig7", "--events", "2500"])
        assert code == 0
        assert "successor entropy" in capsys.readouterr().out.lower()

    def test_fig3_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "fig3.csv"
        code = main(
            [
                "fig3",
                "--workload",
                "server",
                "--events",
                "2500",
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()
        assert csv_path.read_text().startswith("Cache Capacity")

    def test_headline_runs(self, capsys):
        code = main(["headline", "--events", "2500"])
        assert code == 0
        assert "claim" in capsys.readouterr().out

    def test_generate_and_inspect(self, capsys, tmp_path):
        trace_path = tmp_path / "server.trace"
        code = main(
            [
                "generate",
                "--workload",
                "server",
                "--events",
                "1000",
                "--out",
                str(trace_path),
            ]
        )
        assert code == 0
        assert trace_path.exists()
        code = main(["inspect", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "| events | 1000 |" in out

    def test_inspect_missing_file(self, capsys):
        with pytest.raises(FileNotFoundError):
            main(["inspect", "/nonexistent/trace.txt"])

    def test_placement_runs(self, capsys):
        code = main(["placement", "--workload", "server", "--events", "2500"])
        assert code == 0
        assert "Mean Seek Distance" in capsys.readouterr().out

    def test_hoard_runs(self, capsys):
        code = main(["hoard", "--workload", "server", "--events", "4000"])
        assert code == 0
        assert "group-closure" in capsys.readouterr().out

    def test_cooperation_runs(self, capsys):
        code = main(["cooperation", "--workload", "server", "--events", "2500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cooperative" in out
        assert "filtered" in out

    def test_profile_workload(self, capsys):
        code = main(["profile", "--workload", "server", "--events", "2500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "predictability profile" in out
        assert "bits" in out

    def test_profile_trace_file(self, capsys, tmp_path):
        trace_path = tmp_path / "t.trace"
        main(
            [
                "generate",
                "--workload",
                "workstation",
                "--events",
                "2000",
                "--out",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        code = main(["profile", "--trace", str(trace_path)])
        assert code == 0
        assert "predictability profile" in capsys.readouterr().out

    def test_error_reporting(self, capsys, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_text("frobnicate x\n", encoding="utf-8")
        code = main(["inspect", str(bad)])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestCompareAndAnonymize:
    def test_compare_runs(self, capsys):
        code = main(
            [
                "compare",
                "--workload",
                "server",
                "--events",
                "3000",
                "--capacity",
                "150",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregating g5" in out
        assert "| lru |" in out

    def test_anonymize_keyed(self, capsys, tmp_path):
        source = tmp_path / "raw.trace"
        target = tmp_path / "anon.trace"
        main(
            [
                "generate",
                "--workload",
                "server",
                "--events",
                "500",
                "--out",
                str(source),
            ]
        )
        capsys.readouterr()
        code = main(["anonymize", str(source), "--out", str(target), "--key", "k"])
        assert code == 0
        assert target.exists()
        assert "server/" not in target.read_text().splitlines()[5]

    def test_anonymize_enumerated(self, capsys, tmp_path):
        source = tmp_path / "raw.trace"
        target = tmp_path / "enum.trace"
        main(
            [
                "generate",
                "--workload",
                "users",
                "--events",
                "500",
                "--out",
                str(source),
            ]
        )
        capsys.readouterr()
        code = main(["anonymize", str(source), "--out", str(target)])
        assert code == 0
        assert "enumeration" in capsys.readouterr().out


class TestWorkloadsCommand:
    def test_catalog_table(self, capsys):
        code = main(["workloads"])
        assert code == 0
        out = capsys.readouterr().out
        assert "mozart" in out
        assert "barber" in out

    def test_single_workload_detail(self, capsys):
        code = main(["workloads", "server"])
        assert code == 0
        out = capsys.readouterr().out
        assert "calibration targets" in out

    def test_unknown_workload_errors(self, capsys):
        code = main(["workloads", "vax"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestGraphAndReportCommands:
    def test_graph_runs(self, capsys):
        code = main(["graph", "--workload", "server", "--events", "2500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "relationship graph" in out
        assert "hub files" in out
        assert "covering set" in out

    def test_report_command_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["report", "--events", "2500"])
        assert callable(args.handler)
