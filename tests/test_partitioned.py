"""Unit tests for attribution-partitioned successor tracking."""

import pytest

from repro.core.partitioned import (
    PartitionedSuccessorTracker,
    evaluate_partitioned_misses,
)
from repro.traces.events import Trace, TraceEvent


def interleaved_trace():
    """Two clients running clean chains, *randomly* interleaved.

    Randomness matters: a fixed alternation would itself be a
    learnable global pattern.  With a random scheduler the global
    stream's successions are noise while each client's stream remains
    a deterministic cycle.
    """
    import random

    rng = random.Random(7)
    trace = Trace(name="interleaved")
    chains = {
        "east": ["a1", "a2", "a3", "a4"],
        "west": ["b1", "b2", "b3", "b4"],
    }
    positions = {"east": 0, "west": 0}
    for _ in range(120):
        client = "east" if rng.random() < 0.5 else "west"
        chain = chains[client]
        trace.append(TraceEvent(chain[positions[client]], client_id=client))
        positions[client] = (positions[client] + 1) % len(chain)
    return trace


class TestPartitionedSuccessorTracker:
    def test_partitions_isolate_streams(self):
        tracker = PartitionedSuccessorTracker(capacity=4)
        tracker.observe_trace(interleaved_trace())
        # Per-client: each chain's succession is clean.
        assert tracker.most_likely("east", "a1") == "a2"
        assert tracker.most_likely("west", "b1") == "b2"
        # No cross-partition leakage.
        assert tracker.most_likely("east", "b1") is None

    def test_partition_created_on_demand(self):
        tracker = PartitionedSuccessorTracker()
        tracker.observe("c1", "x")
        tracker.observe("c1", "y")
        assert set(tracker.partitions()) == {"c1"}
        assert tracker.successors("c2", "x") == []

    def test_empty_attribution_is_its_own_partition(self):
        tracker = PartitionedSuccessorTracker()
        tracker.observe("", "x")
        tracker.observe("", "y")
        assert tracker.most_likely("", "x") == "y"

    def test_metadata_entries_sum_partitions(self):
        tracker = PartitionedSuccessorTracker(capacity=4)
        tracker.observe_trace(interleaved_trace())
        assert tracker.metadata_entries() >= 6  # 3 per chain at least

    def test_observe_trace_by_other_attribute(self):
        trace = Trace()
        trace.append(TraceEvent("x", user_id="u1"))
        trace.append(TraceEvent("y", user_id="u1"))
        tracker = PartitionedSuccessorTracker()
        tracker.observe_trace(trace, by="user_id")
        assert tracker.most_likely("u1", "x") == "y"


class TestEvaluatePartitionedMisses:
    def test_partitioning_wins_on_interleaved_chains(self):
        comparison = evaluate_partitioned_misses(interleaved_trace(), capacity=1)
        # Global order alternates a_i, b_i: global successor lists of
        # capacity 1 are constantly wrong; per-client lists are nearly
        # perfect.
        assert comparison.partitioned_misses < comparison.global_misses
        assert comparison.improvement > 0.5

    def test_single_client_is_neutral(self):
        trace = Trace(name="solo")
        for _ in range(20):
            for key in ["x", "y", "z"]:
                trace.append(TraceEvent(key, client_id="only"))
        comparison = evaluate_partitioned_misses(trace, capacity=2)
        assert comparison.global_misses == comparison.partitioned_misses
        assert comparison.improvement == pytest.approx(0.0)

    def test_opportunities_consistent(self):
        comparison = evaluate_partitioned_misses(interleaved_trace(), capacity=2)
        assert comparison.opportunities > 0
        assert comparison.global_misses <= comparison.opportunities
        assert comparison.partitioned_misses <= comparison.opportunities

    def test_empty_trace(self):
        comparison = evaluate_partitioned_misses(Trace(), capacity=2)
        assert comparison.opportunities == 0
        assert comparison.global_miss_probability == 0.0
        assert comparison.improvement == 0.0

    def test_metadata_accounting(self):
        comparison = evaluate_partitioned_misses(interleaved_trace(), capacity=4)
        assert comparison.global_metadata > 0
        assert comparison.partitioned_metadata > 0
        # On randomly interleaved clean chains the per-client lists are
        # *smaller* than the global ones: the global tracker accumulates
        # a list of cross-client noise successors per file, while each
        # partition holds the single true successor.
        assert comparison.partitioned_metadata < comparison.global_metadata


class TestRunAttribution:
    def test_structure_and_shape(self):
        from repro.experiments import run_attribution

        figure = run_attribution(
            events=6000, workloads=("users", "server"), capacities=(2, 4)
        )
        assert figure.labels() == ["users", "server"]
        # Many-client workload gains, single-client neutral.
        assert figure.get_series("users").y_at(4) > 0.05
        assert abs(figure.get_series("server").y_at(4)) < 0.02
