"""Unit tests for trace stream filters."""

import pytest

from repro.caching.lru import LRUCache
from repro.traces.events import EventKind, Trace
from repro.traces.filters import (
    by_client,
    by_kind,
    by_predicate,
    by_prefix,
    cache_filtered,
    collapse_repeats,
    opens_only,
    split_rounds,
)


class TestProjectionFilters:
    def test_opens_only(self, mixed_trace):
        assert opens_only(mixed_trace).file_ids() == ["a", "a"]

    def test_by_kind(self, mixed_trace):
        mutations = by_kind(
            mixed_trace, [EventKind.WRITE, EventKind.CREATE, EventKind.DELETE]
        )
        assert mutations.file_ids() == ["c", "d", "a"]

    def test_by_client(self, mixed_trace):
        assert by_client(mixed_trace, "c2").file_ids() == ["c", "d"]

    def test_by_predicate(self, mixed_trace):
        odd = by_predicate(mixed_trace, lambda e: e.file_id in ("a", "c"))
        assert odd.file_ids() == ["a", "c", "a", "a"]

    def test_by_prefix(self):
        trace = Trace.from_file_ids(["src/a", "doc/b", "src/c"])
        assert by_prefix(trace, "src/").file_ids() == ["src/a", "src/c"]

    def test_filters_renumber(self, mixed_trace):
        filtered = by_client(mixed_trace, "c1")
        assert [e.sequence for e in filtered] == list(range(len(filtered)))


class TestCollapseRepeats:
    def test_collapses_adjacent(self):
        trace = Trace.from_file_ids(["a", "a", "a", "b", "b", "a"])
        assert collapse_repeats(trace).file_ids() == ["a", "b", "a"]

    def test_noop_without_repeats(self):
        trace = Trace.from_file_ids(["a", "b", "c"])
        assert collapse_repeats(trace).file_ids() == ["a", "b", "c"]

    def test_empty(self):
        assert collapse_repeats(Trace()).file_ids() == []


class TestCacheFiltered:
    def test_miss_stream_content(self):
        # Capacity-1 LRU absorbs only immediate repeats.
        trace = Trace.from_file_ids(["a", "a", "b", "a", "a", "b"])
        filtered = cache_filtered(trace, LRUCache(1))
        assert filtered.file_ids() == ["a", "b", "a", "b"]

    def test_large_cache_absorbs_everything_after_cold(self):
        trace = Trace.from_file_ids(["a", "b", "c"] * 10)
        filtered = cache_filtered(trace, LRUCache(10))
        assert filtered.file_ids() == ["a", "b", "c"]

    def test_names_mention_filter(self):
        trace = Trace.from_file_ids(["a"], name="t")
        filtered = cache_filtered(trace, LRUCache(5))
        assert "5" in filtered.name


class TestSplitRounds:
    def test_partitions_cover_everything(self):
        trace = Trace.from_file_ids([str(i) for i in range(10)])
        rounds = split_rounds(trace, 3)
        recombined = [f for piece in rounds for f in piece.file_ids()]
        assert recombined == trace.file_ids()

    def test_round_count(self):
        trace = Trace.from_file_ids([str(i) for i in range(7)])
        assert len(split_rounds(trace, 4)) == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_rounds(Trace(), 0)
