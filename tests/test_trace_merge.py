"""Unit tests for trace composition utilities."""

import pytest

from repro.errors import TraceError
from repro.traces.events import EventKind, Trace, TraceEvent
from repro.traces.merge import concatenate, interleave, prefix_files, relabel_clients


@pytest.fixture
def pair():
    a = Trace.from_file_ids(["a1", "a2", "a3"], name="alpha")
    b = Trace.from_file_ids(["b1", "b2"], name="beta")
    return a, b


class TestConcatenate:
    def test_order_and_length(self, pair):
        a, b = pair
        combined = concatenate([a, b])
        assert combined.file_ids() == ["a1", "a2", "a3", "b1", "b2"]
        assert combined.name == "alpha+beta"
        assert [e.sequence for e in combined] == list(range(5))

    def test_requires_input(self):
        with pytest.raises(TraceError):
            concatenate([])

    def test_custom_name(self, pair):
        assert concatenate(pair, name="phases").name == "phases"


class TestRelabelAndPrefix:
    def test_relabel_clients(self, pair):
        a, _ = pair
        renamed = relabel_clients(a, "laptop")
        assert all(e.client_id == "laptop" for e in renamed)
        assert renamed.file_ids() == a.file_ids()

    def test_prefix_files(self, pair):
        a, _ = pair
        spaced = prefix_files(a, "site1/")
        assert spaced.file_ids() == ["site1/a1", "site1/a2", "site1/a3"]

    def test_prefix_preserves_kind(self):
        trace = Trace.from_file_ids(["x"], kind=EventKind.WRITE)
        assert prefix_files(trace, "p/")[0].kind is EventKind.WRITE


class TestInterleave:
    def test_consumes_everything_in_source_order(self, pair):
        a, b = pair
        merged = interleave([a, b], seed=3)
        assert len(merged) == 5
        # Per-source relative order is preserved.
        a_events = [f for f in merged.file_ids() if f.startswith("a")]
        b_events = [f for f in merged.file_ids() if f.startswith("b")]
        assert a_events == a.file_ids()
        assert b_events == b.file_ids()

    def test_relabeling(self, pair):
        merged = interleave(pair, seed=1)
        clients = {e.client_id for e in merged}
        assert clients <= {"merged00", "merged01"}
        assert len(clients) == 2

    def test_relabel_disabled_keeps_original(self):
        trace = Trace()
        trace.append(TraceEvent("x", client_id="orig"))
        merged = interleave([trace], seed=1, relabel=False)
        assert merged[0].client_id == "orig"

    def test_deterministic(self, pair):
        assert interleave(pair, seed=9).file_ids() == interleave(
            pair, seed=9
        ).file_ids()

    def test_different_seeds_differ(self):
        a = Trace.from_file_ids([f"a{i}" for i in range(50)])
        b = Trace.from_file_ids([f"b{i}" for i in range(50)])
        assert interleave([a, b], seed=1).file_ids() != interleave(
            [a, b], seed=2
        ).file_ids()

    def test_rejects_bad_inputs(self, pair):
        with pytest.raises(TraceError):
            interleave([])
        with pytest.raises(TraceError):
            interleave(pair, run_mean=0.5)

    def test_empty_sources_skipped(self):
        merged = interleave([Trace(), Trace.from_file_ids(["x"])], seed=1)
        assert merged.file_ids() == ["x"]

    def test_merge_enables_attribution_analysis(self):
        # The canonical use: merge two single-client captures and show
        # partitioned tracking recovers per-source predictability.
        from repro.core.partitioned import evaluate_partitioned_misses

        chain_a = Trace.from_file_ids([f"a{i % 8}" for i in range(160)])
        chain_b = Trace.from_file_ids([f"b{i % 8}" for i in range(160)])
        merged = interleave([chain_a, chain_b], seed=5, run_mean=2.0)
        comparison = evaluate_partitioned_misses(merged, capacity=1)
        assert comparison.partitioned_misses < comparison.global_misses