"""Unit tests for dynamic group construction."""

import pytest

from repro.core.grouping import Group, GroupBuilder
from repro.core.successors import SuccessorTracker
from repro.errors import CacheConfigurationError


@pytest.fixture
def chain_tracker():
    """Tracker trained on the deterministic chain a->b->c->d->e (x3)."""
    tracker = SuccessorTracker(capacity=4)
    for _ in range(3):
        tracker.observe_sequence(["a", "b", "c", "d", "e"])
    return tracker


class TestGroup:
    def test_accessors(self):
        group = Group(members=("a", "b", "c"))
        assert group.demanded == "a"
        assert group.predicted == ("b", "c")
        assert len(group) == 3
        assert "b" in group
        assert list(group) == ["a", "b", "c"]


class TestGroupBuilder:
    def test_rejects_nonpositive_size(self, chain_tracker):
        with pytest.raises(CacheConfigurationError):
            GroupBuilder(chain_tracker, 0)
        builder = GroupBuilder(chain_tracker, 3)
        with pytest.raises(CacheConfigurationError):
            builder.build("a", size=0)

    def test_transitive_chain(self, chain_tracker):
        builder = GroupBuilder(chain_tracker, 4)
        group = builder.build("a")
        assert group.members == ("a", "b", "c", "d")

    def test_size_override(self, chain_tracker):
        builder = GroupBuilder(chain_tracker, 4)
        assert len(builder.build("a", size=2)) == 2

    def test_best_effort_on_short_chain(self, chain_tracker):
        builder = GroupBuilder(chain_tracker, 10)
        group = builder.build("d")
        # d -> e -> a -> b -> c covers the whole chain; nothing more
        # exists, so the group stops at 5 members.
        assert group.members == ("d", "e", "a", "b", "c")

    def test_singleton_without_metadata(self, chain_tracker):
        builder = GroupBuilder(chain_tracker, 5)
        assert builder.build("ghost").members == ("ghost",)

    def test_no_duplicates_with_cycles(self):
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(["a", "b", "a", "b", "a"])
        builder = GroupBuilder(tracker, 5)
        group = builder.build("a")
        assert len(set(group.members)) == len(group.members)

    def test_cycle_falls_through_to_next_likely(self):
        # a's successors: most recent c, then b; b -> a (cycle).
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(["a", "b", "a", "c"])
        builder = GroupBuilder(tracker, 3)
        group = builder.build("a")
        assert group.demanded == "a"
        assert set(group.predicted) == {"b", "c"}

    def test_fallback_uses_earlier_members(self):
        # Chain a->b dead-ends at b, but a has a second successor d.
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(["a", "d"])
        tracker.reset_stream()
        tracker.observe_sequence(["a", "b"])
        builder = GroupBuilder(tracker, 3)
        group = builder.build("a")
        assert group.members == ("a", "b", "d")

    def test_group_members_are_predicted_order(self, chain_tracker):
        builder = GroupBuilder(chain_tracker, 5)
        group = builder.build("b")
        assert group.members == ("b", "c", "d", "e", "a")


class TestTransitiveSuccessors:
    def test_pure_chain(self, chain_tracker):
        builder = GroupBuilder(chain_tracker, 5)
        assert builder.transitive_successors("a", 3) == ["b", "c", "d"]

    def test_stops_at_cycle(self):
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(["a", "b", "a", "b"])
        builder = GroupBuilder(tracker, 5)
        # a -> b -> a would revisit; the pure chain stops at b.
        assert builder.transitive_successors("a", 10) == ["b"]

    def test_stops_at_unknown(self, chain_tracker):
        builder = GroupBuilder(chain_tracker, 5)
        # e -> a -> ... works; but a file with no metadata yields [].
        assert builder.transitive_successors("ghost", 5) == []

    def test_length_zero(self, chain_tracker):
        builder = GroupBuilder(chain_tracker, 5)
        assert builder.transitive_successors("a", 0) == []


class TestAdaptiveGroupBuilder:
    def _tracker_with_unstable_middle(self):
        from repro.core.successors import SuccessorTracker

        tracker = SuccessorTracker(capacity=8)
        for _ in range(3):
            tracker.observe_sequence(["a", "b", "c", "d", "e"])
            tracker.reset_stream()
        # Make 'c' unpredictable: three distinct recent successors.
        for noise in ["x", "y", "z"]:
            tracker.observe_transition("c", noise)
        return tracker

    def test_stops_at_unstable_frontier(self):
        from repro.core.grouping import AdaptiveGroupBuilder

        builder = AdaptiveGroupBuilder(
            self._tracker_with_unstable_middle(),
            max_size=5,
            min_size=1,
            degree_threshold=2,
        )
        # a -> b -> c, then c is unstable: stop.
        assert builder.build("a").members == ("a", "b", "c")

    def test_full_depth_on_stable_chain(self):
        from repro.core.grouping import AdaptiveGroupBuilder

        builder = AdaptiveGroupBuilder(
            self._tracker_with_unstable_middle(),
            max_size=5,
            min_size=1,
            degree_threshold=2,
        )
        # d -> e is stable; e has no observed successor (streams were
        # reset between passes), so the chain ends there.
        assert builder.build("d").members == ("d", "e")

    def test_min_size_forces_extension(self):
        from repro.core.grouping import AdaptiveGroupBuilder

        tracker = self._tracker_with_unstable_middle()
        builder = AdaptiveGroupBuilder(
            tracker, max_size=5, min_size=2, degree_threshold=1
        )
        # 'c' itself is the demanded file and unstable, but min_size=2
        # still ships one companion (its most recent successor).
        built = builder.build("c")
        assert len(built) == 2

    def test_rejects_bad_parameters(self):
        from repro.core.grouping import AdaptiveGroupBuilder
        from repro.core.successors import SuccessorTracker

        tracker = SuccessorTracker()
        with pytest.raises(CacheConfigurationError):
            AdaptiveGroupBuilder(tracker, max_size=5, min_size=0)
        with pytest.raises(CacheConfigurationError):
            AdaptiveGroupBuilder(tracker, max_size=5, min_size=6)
        with pytest.raises(CacheConfigurationError):
            AdaptiveGroupBuilder(tracker, degree_threshold=0)

    def test_singleton_for_unknown_file(self):
        from repro.core.grouping import AdaptiveGroupBuilder

        builder = AdaptiveGroupBuilder(self._tracker_with_unstable_middle())
        assert builder.build("ghost").members == ("ghost",)

    def test_works_inside_aggregating_cache(self):
        from repro.core.aggregating_cache import AggregatingClientCache
        from repro.core.grouping import AdaptiveGroupBuilder

        cache = AggregatingClientCache(capacity=20, group_size=5)
        cache.builder = AdaptiveGroupBuilder(cache.tracker, max_size=10)
        files = [f"f{i}" for i in range(40)]
        cache.replay(files * 6)
        lru = AggregatingClientCache(capacity=20, group_size=1)
        lru.replay(files * 6)
        assert cache.demand_fetches < lru.demand_fetches
