"""Unit tests for Mattson stack-distance analysis."""

import random

import pytest

from repro.caching.lru import LRUCache
from repro.caching.stack_distance import (
    COLD,
    hit_rate_curve,
    miss_curve,
    stack_distances,
    working_set_knee,
)
from repro.errors import AnalysisError


class TestStackDistances:
    def test_known_sequence(self):
        # a b c a : 'a' re-accessed after b,c -> distance 3.
        assert stack_distances(["a", "b", "c", "a"]) == [COLD, COLD, COLD, 3]

    def test_immediate_repeat_is_distance_one(self):
        assert stack_distances(["a", "a"]) == [COLD, 1]

    def test_interleaved(self):
        # a b a b : each re-access skips one distinct file -> 2.
        assert stack_distances(["a", "b", "a", "b"]) == [COLD, COLD, 2, 2]

    def test_duplicates_between_accesses_counted_once(self):
        # a b b b a : only one distinct file between the two a's.
        assert stack_distances(["a", "b", "b", "b", "a"])[-1] == 2

    def test_empty(self):
        assert stack_distances([]) == []


class TestMissCurve:
    def test_matches_replay_exactly(self):
        rng = random.Random(7)
        sequence = [f"f{rng.randrange(50)}" for _ in range(3000)]
        capacities = [1, 2, 5, 10, 20, 40, 80]
        curve = miss_curve(sequence, capacities)
        for capacity in capacities:
            cache = LRUCache(capacity)
            for key in sequence:
                cache.access(key)
            assert curve[capacity] == cache.stats.misses, capacity

    def test_matches_replay_on_real_workload(self):
        from repro.experiments.common import workload_sequence

        sequence = list(workload_sequence("workstation", 6000))
        curve = miss_curve(sequence, [100, 300])
        for capacity in (100, 300):
            cache = LRUCache(capacity)
            for key in sequence:
                cache.access(key)
            assert curve[capacity] == cache.stats.misses

    def test_monotone_in_capacity(self):
        rng = random.Random(1)
        sequence = [f"f{rng.randrange(30)}" for _ in range(1000)]
        curve = miss_curve(sequence, range(1, 40))
        values = [curve[c] for c in sorted(curve)]
        assert values == sorted(values, reverse=True)

    def test_rejects_bad_capacity(self):
        with pytest.raises(AnalysisError):
            miss_curve(["a"], [0])

    def test_infinite_capacity_floor_is_cold_misses(self):
        sequence = ["a", "b", "a", "c", "b"]
        curve = miss_curve(sequence, [100])
        assert curve[100] == 3  # the distinct files


class TestHitRateCurve:
    def test_rates(self):
        sequence = ["a", "b"] * 50
        curve = hit_rate_curve(sequence, [1, 2])
        assert curve[2] == pytest.approx(0.98)
        assert curve[1] == pytest.approx(0.0)

    def test_empty_sequence(self):
        assert hit_rate_curve([], [4]) == {4: 0.0}


class TestWorkingSetKnee:
    def test_finds_working_set_size(self):
        sequence = [f"f{i % 8}" for i in range(800)]
        knee = working_set_knee(sequence, capacities=[2, 4, 8, 16, 32])
        assert knee == 8

    def test_empty(self):
        assert working_set_knee([]) == 0

    def test_rejects_bad_fraction(self):
        with pytest.raises(AnalysisError):
            working_set_knee(["a"], knee_fraction=0.0)

    def test_default_probe_grid(self):
        sequence = [f"f{i % 5}" for i in range(200)]
        knee = working_set_knee(sequence)
        assert knee >= 5
