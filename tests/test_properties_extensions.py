"""Property-based tests for the extension subsystems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import PPMPredictor
from repro.core.grouping import AdaptiveGroupBuilder
from repro.core.partitioned import evaluate_partitioned_misses
from repro.core.successors import SuccessorTracker
from repro.hoarding.hoard import (
    FrequencyHoard,
    GroupClosureHoard,
    RecencyHoard,
    simulate_disconnection,
)
from repro.placement.disk import layout_from_order, organ_pipe_order
from repro.placement.strategies import group_layout, random_layout
from repro.traces.anonymize import (
    anonymize_trace,
    enumerate_trace,
    verify_structure_preserved,
)
from repro.traces.events import Trace

keys = st.text(alphabet="abcdefgh", min_size=1, max_size=2)
sequences = st.lists(keys, min_size=0, max_size=200)
nonempty_sequences = st.lists(keys, min_size=5, max_size=200)


class TestPlacementProperties:
    @given(sequence=nonempty_sequences)
    @settings(max_examples=40, deadline=None)
    def test_seeks_bounded_by_device_size(self, sequence):
        layout = random_layout(sequence, seed=1)
        stats = layout.replay(sequence)
        assert stats.max_distance < layout.capacity
        assert stats.requests == len(sequence)

    @given(sequence=nonempty_sequences, group=st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_group_layout_places_every_file_once(self, sequence, group):
        layout = group_layout(sequence, group_size=group)
        assert set(layout.files()) == set(sequence)
        assert layout.replication_overhead() == 0.0

    @given(counts=st.dictionaries(keys, st.integers(1, 100), min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_organ_pipe_is_permutation(self, counts):
        order = organ_pipe_order(counts)
        assert sorted(order) == sorted(counts)

    @given(order=st.lists(keys, min_size=1, max_size=20, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_nearest_position_is_nearest(self, order):
        layout = layout_from_order(order)
        for head in range(len(order)):
            for file_id in order:
                nearest = layout.nearest_position(file_id, head)
                distances = [
                    abs(position - head)
                    for position, slot in enumerate(layout.slots)
                    if slot == file_id
                ]
                assert abs(nearest - head) == min(distances)


class TestHoardingProperties:
    @given(sequence=st.lists(keys, min_size=10, max_size=200), budget=st.integers(1, 30))
    @settings(max_examples=40, deadline=None)
    def test_budgets_respected_and_rates_bounded(self, sequence, budget):
        disconnect_at = len(sequence) // 2
        for policy in (RecencyHoard(), FrequencyHoard(), GroupClosureHoard(5)):
            report = simulate_disconnection(sequence, disconnect_at, budget, policy)
            assert report.hoard_size <= budget
            assert 0.0 <= report.miss_rate <= 1.0
            assert report.misses <= report.offline_accesses

    @given(sequence=st.lists(keys, min_size=10, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_recency_miss_rate_monotone_in_budget(self, sequence):
        disconnect_at = len(sequence) // 2
        previous = None
        for budget in (1, 4, 16, 64):
            rate = simulate_disconnection(
                sequence, disconnect_at, budget, RecencyHoard()
            ).miss_rate
            if previous is not None:
                assert rate <= previous + 1e-9
            previous = rate

    @given(sequence=st.lists(keys, min_size=10, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_full_budget_hoard_never_misses(self, sequence):
        disconnect_at = len(sequence) // 2
        budget = len(set(sequence)) + 1
        report = simulate_disconnection(
            sequence, disconnect_at, budget, RecencyHoard()
        )
        assert report.misses == 0


class TestAnonymizationProperties:
    @given(sequence=sequences)
    @settings(max_examples=40, deadline=None)
    def test_hash_preserves_structure(self, sequence):
        trace = Trace.from_file_ids(sequence)
        assert verify_structure_preserved(trace, anonymize_trace(trace, key="k"))

    @given(sequence=sequences)
    @settings(max_examples=40, deadline=None)
    def test_enumeration_preserves_structure(self, sequence):
        trace = Trace.from_file_ids(sequence)
        assert verify_structure_preserved(trace, enumerate_trace(trace))

    @given(sequence=nonempty_sequences)
    @settings(max_examples=30, deadline=None)
    def test_entropy_invariant(self, sequence):
        from repro.core.entropy import successor_entropy

        trace = Trace.from_file_ids(sequence)
        original = successor_entropy(sequence)
        renamed = successor_entropy(enumerate_trace(trace).file_ids())
        assert abs(original - renamed) < 1e-9


class TestAdaptiveGroupProperties:
    @given(sequence=sequences, threshold=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_groups_bounded_and_unique(self, sequence, threshold):
        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(sequence)
        builder = AdaptiveGroupBuilder(
            tracker, max_size=6, min_size=1, degree_threshold=threshold
        )
        for seed in set(sequence) or {"x"}:
            group = builder.build(seed)
            assert 1 <= len(group) <= 6
            assert len(set(group.members)) == len(group.members)

    @given(sequence=sequences)
    @settings(max_examples=40, deadline=None)
    def test_adaptive_never_larger_than_unconstrained(self, sequence):
        from repro.core.grouping import GroupBuilder

        tracker = SuccessorTracker(capacity=4)
        tracker.observe_sequence(sequence)
        adaptive = AdaptiveGroupBuilder(
            tracker, max_size=6, min_size=1, degree_threshold=8
        )
        fixed = GroupBuilder(tracker, 6)
        for seed in list(set(sequence))[:10]:
            # With a huge threshold the adaptive chain still never uses
            # the fallback scan, so it cannot exceed the fixed builder.
            assert len(adaptive.build(seed)) <= len(fixed.build(seed))


class TestPPMProperties:
    @given(sequence=sequences, order=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_predictions_unique_and_bounded(self, sequence, order):
        predictor = PPMPredictor(max_order=order)
        for key in sequence:
            predictor.update(key)
        for key in set(sequence) or {"x"}:
            predictions = predictor.predict(key, 4)
            assert len(predictions) <= 4
            assert len(set(predictions)) == len(predictions)

    @given(sequence=sequences, budget=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_context_budget_is_hard(self, sequence, budget):
        predictor = PPMPredictor(max_order=2, max_contexts=budget)
        for key in sequence:
            predictor.update(key)
        # Per-order budget: at most max_order * budget total contexts.
        assert predictor.context_count() <= 2 * budget


class TestPartitionedProperties:
    @given(sequence=nonempty_sequences, clients=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_comparison_consistency(self, sequence, clients):
        import random

        rng = random.Random(0)
        trace = Trace()
        from repro.traces.events import TraceEvent

        for file_id in sequence:
            trace.append(
                TraceEvent(file_id, client_id=f"c{rng.randrange(clients)}")
            )
        comparison = evaluate_partitioned_misses(trace, capacity=2)
        assert 0 <= comparison.global_misses <= comparison.opportunities
        assert 0 <= comparison.partitioned_misses <= comparison.opportunities
        if clients == 1:
            assert comparison.global_misses == comparison.partitioned_misses
