"""Unit tests for the columnar binary trace format (``repro-ctrace``)."""

import pickle
import struct

import pytest

from repro.traces.columnar import (
    FORMAT_NAME,
    FORMAT_VERSION,
    MAGIC,
    ColumnarFormatError,
    ColumnarTrace,
    describe_columnar,
    read_columnar,
    validate_columnar,
    write_columnar,
)
from repro.traces.events import EventKind, Trace, TraceEvent
from repro.traces.symbols import intern_sequence
from repro.workloads.synthetic import make_workload

WORKLOADS = ("server", "users", "write", "workstation")
EVENTS = 2000


class TestRoundTrip:
    def test_memory_round_trip_mixed(self, mixed_trace):
        decoded = ColumnarTrace.from_trace(mixed_trace).to_trace()
        assert decoded.events == mixed_trace.events
        assert decoded.name == mixed_trace.name

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_file_round_trip_workloads(self, workload, tmp_path):
        trace = make_workload(workload, EVENTS)
        path = tmp_path / f"{workload}.ctrace"
        write_columnar(trace, path)
        decoded = read_columnar(path).to_trace()
        assert decoded.events == trace.events

    def test_text_columnar_text_event_identical(self, tmp_path):
        from repro.traces.reader import read_trace
        from repro.traces.writer import write_trace

        original = make_workload("write", EVENTS)
        text_in = tmp_path / "in.trace"
        ctrace_path = tmp_path / "mid.ctrace"
        text_out = tmp_path / "out.trace"
        write_trace(original, text_in)
        write_columnar(read_trace(text_in), ctrace_path)
        write_trace(read_columnar(ctrace_path).to_trace(), text_out)
        assert read_trace(text_out).events == read_trace(text_in).events

    def test_codes_match_intern_sequence(self):
        trace = make_workload("users", EVENTS)
        ctrace = ColumnarTrace.from_trace(trace)
        codes, table = intern_sequence(trace.file_ids())
        assert list(ctrace.file_codes) == codes
        assert list(ctrace.file_symbols) == [
            table.decode(code) for code in range(len(table))
        ]

    def test_event_at_matches_iteration(self, mixed_trace):
        ctrace = ColumnarTrace.from_trace(mixed_trace)
        assert [
            ctrace.event_at(index) for index in range(len(ctrace))
        ] == list(ctrace.iter_events())


class TestLayout:
    def test_describe_reports_header_facts(self, tmp_path):
        trace = make_workload("write", EVENTS)
        path = tmp_path / "w.ctrace"
        written = write_columnar(trace, path)
        info = describe_columnar(path)
        assert info["format"] == FORMAT_NAME
        assert info["version"] == FORMAT_VERSION
        assert info["events"] == EVENTS
        assert info["unique_files"] == trace.unique_files()
        assert info["file_bytes"] == written == path.stat().st_size
        assert info["columns"]["file"] == 4 * EVENTS
        assert info["columns"]["kind"] == EVENTS  # write has mutations

    def test_constant_columns_elided(self):
        # Single attribution + all-OPEN events: only the file column.
        trace = Trace.from_file_ids(["a", "b", "a"], name="flat")
        ctrace = ColumnarTrace.from_trace(trace)
        assert ctrace.kind_codes is None
        assert ctrace.client_codes is None
        assert ctrace.user_codes is None
        assert ctrace.process_codes is None
        assert ctrace.column_nbytes() == {"file": 12}
        assert ctrace.to_trace().events == trace.events

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ctrace"
        path.write_bytes(b"NOTRACE\x00" + b"\x00" * 100)
        with pytest.raises(ColumnarFormatError):
            read_columnar(path)
        assert validate_columnar(path) is False

    def test_newer_version_rejected(self, tmp_path):
        trace = make_workload("server", 100)
        path = tmp_path / "future.ctrace"
        write_columnar(trace, path)
        raw = bytearray(path.read_bytes())
        struct.pack_into("<H", raw, len(MAGIC), FORMAT_VERSION + 1)
        path.write_bytes(bytes(raw))
        with pytest.raises(ColumnarFormatError):
            read_columnar(path)
        assert validate_columnar(path) is False

    def test_truncated_file_rejected(self, tmp_path):
        trace = make_workload("server", 100)
        path = tmp_path / "cut.ctrace"
        write_columnar(trace, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 16])
        with pytest.raises(ColumnarFormatError):
            read_columnar(path)
        assert validate_columnar(path) is False

    def test_validate_accepts_good_file(self, tmp_path):
        path = tmp_path / "ok.ctrace"
        write_columnar(make_workload("server", 100), path)
        assert validate_columnar(path) is True


class TestViews:
    def test_slice_is_zero_copy_and_exact(self, tmp_path):
        trace = make_workload("write", EVENTS)
        path = tmp_path / "w.ctrace"
        write_columnar(trace, path)
        ctrace = read_columnar(path)
        view = ctrace.slice(100, 400)
        assert len(view) == 300
        assert view.to_trace().events == trace.slice(100, 400).events
        # Shared symbol tables, not copies.
        assert view.file_symbols is ctrace.file_symbols

    def test_chunks_cover_whole_trace(self):
        ctrace = ColumnarTrace.from_trace(make_workload("users", 2500))
        pieces = list(ctrace.chunks(400))
        assert sum(len(piece) for piece in pieces) == 2500
        rebuilt = [
            event for piece in pieces for event in piece.iter_events()
        ]
        assert [e.file_id for e in rebuilt] == ctrace.file_ids()

    def test_not_picklable(self):
        ctrace = ColumnarTrace.from_trace(make_workload("server", 100))
        with pytest.raises(TypeError):
            pickle.dumps(ctrace)

    def test_unique_files_exact_on_slices(self):
        trace = make_workload("workstation", EVENTS)
        ctrace = ColumnarTrace.from_trace(trace)
        assert ctrace.unique_files() == trace.unique_files()
        view = ctrace.slice(0, 500)
        assert view.unique_files() == trace.slice(0, 500).unique_files()
