"""Unit tests for foreign trace-format adapters."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.traces.adapters import from_csv, from_path_lines, from_strace_log
from repro.traces.events import EventKind


class TestFromPathLines:
    def test_basic(self):
        stream = io.StringIO("/usr/bin/vi\n/etc/passwd\n")
        trace = from_path_lines(stream)
        assert trace.file_ids() == ["/usr/bin/vi", "/etc/passwd"]

    def test_skips_blanks_and_comments(self):
        stream = io.StringIO("# capture 2026-07-06\n\n/a\n  \n/b\n")
        assert from_path_lines(stream).file_ids() == ["/a", "/b"]

    def test_from_file(self, tmp_path):
        path = tmp_path / "paths.txt"
        path.write_text("/x\n/y\n", encoding="utf-8")
        assert from_path_lines(path).file_ids() == ["/x", "/y"]


class TestFromCsv:
    def test_positional_columns(self):
        stream = io.StringIO("/a,open,c1\n/b,write,c2\n")
        trace = from_csv(stream, path_column=0, operation_column=1, client_column=2)
        assert trace.file_ids() == ["/a", "/b"]
        assert trace[1].kind is EventKind.WRITE
        assert trace[1].client_id == "c2"

    def test_named_columns_with_header(self):
        stream = io.StringIO("op,client,path\nopen,c1,/a\nunlink,c1,/b\n")
        trace = from_csv(
            stream,
            path_column="path",
            operation_column="op",
            client_column="client",
            has_header=True,
        )
        assert trace.file_ids() == ["/a", "/b"]
        assert trace[1].kind is EventKind.DELETE

    def test_named_column_requires_header(self):
        with pytest.raises(TraceFormatError, match="has_header"):
            from_csv(io.StringIO("x\n"), path_column="path")

    def test_missing_named_column(self):
        stream = io.StringIO("a,b\n1,2\n")
        with pytest.raises(TraceFormatError, match="no column"):
            from_csv(stream, path_column="path", has_header=True)

    def test_unknown_operation_defaults_to_open(self):
        stream = io.StringIO("/a,mmap\n")
        trace = from_csv(stream, path_column=0, operation_column=1)
        assert trace[0].kind is EventKind.OPEN

    def test_strict_rejects_unknown_operation(self):
        stream = io.StringIO("/a,mmap\n")
        with pytest.raises(TraceFormatError, match="mmap"):
            from_csv(stream, path_column=0, operation_column=1, strict=True)

    def test_short_rows_skipped_unless_strict(self):
        stream = io.StringIO("/a,open\njunk\n/b,open\n")
        trace = from_csv(stream, path_column=0, operation_column=1)
        assert trace.file_ids() == ["/a", "junk", "/b"]
        short = io.StringIO("x\n")
        trace = from_csv(short, path_column=3)
        assert len(trace) == 0
        with pytest.raises(TraceFormatError):
            from_csv(io.StringIO("x\n"), path_column=3, strict=True)

    def test_alternate_delimiter(self):
        stream = io.StringIO("/a|open\n")
        trace = from_csv(stream, path_column=0, operation_column=1, delimiter="|")
        assert trace.file_ids() == ["/a"]


class TestFromStraceLog:
    LOG = """\
1234  open("/etc/ld.so.cache", O_RDONLY|O_CLOEXEC) = 3
1234  openat(AT_FDCWD, "/usr/lib/libc.so.6", O_RDONLY) = 3
1234  open("/missing/file", O_RDONLY) = -1 ENOENT (No such file)
1234  read(3, "\\x7fELF", 832) = 832
creat("/tmp/output.o", 0644) = 4
unlink("/tmp/stale.lock") = 0
--- SIGCHLD {si_signo=SIGCHLD} ---
"""

    def test_extracts_successful_accesses(self):
        trace = from_strace_log(io.StringIO(self.LOG))
        assert trace.file_ids() == [
            "/etc/ld.so.cache",
            "/usr/lib/libc.so.6",
            "/tmp/output.o",
            "/tmp/stale.lock",
        ]

    def test_kinds(self):
        trace = from_strace_log(io.StringIO(self.LOG))
        assert trace[0].kind is EventKind.OPEN
        assert trace[2].kind is EventKind.CREATE
        assert trace[3].kind is EventKind.DELETE

    def test_pid_becomes_process_attribution(self):
        trace = from_strace_log(io.StringIO(self.LOG))
        assert trace[0].process_id == "1234"
        assert trace[2].process_id == ""

    def test_failed_opens_skipped(self):
        trace = from_strace_log(io.StringIO(self.LOG))
        assert "/missing/file" not in trace.file_ids()

    def test_adapter_feeds_analysis(self):
        from repro.core.entropy import successor_entropy

        trace = from_strace_log(io.StringIO(self.LOG * 10))
        assert successor_entropy(trace.file_ids()) >= 0.0
