"""Unit tests for the parameter sweep runner."""

import pytest

from repro.errors import ExperimentError
from repro.sim.sweep import SweepGrid, pivot, run_sweep


class TestSweepGrid:
    def test_points_cartesian(self):
        grid = SweepGrid().add_axis("a", [1, 2]).add_axis("b", ["x", "y"])
        points = grid.points()
        assert len(points) == 4
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "y"} in points

    def test_order_deterministic(self):
        grid = SweepGrid().add_axis("a", [1, 2]).add_axis("b", [10, 20])
        assert grid.points()[0] == {"a": 1, "b": 10}
        assert grid.points()[1] == {"a": 1, "b": 20}

    def test_len(self):
        grid = SweepGrid().add_axis("a", [1, 2, 3]).add_axis("b", [1, 2])
        assert len(grid) == 6

    def test_empty_grid_single_point(self):
        assert SweepGrid().points() == [{}]

    def test_rejects_empty_axis(self):
        with pytest.raises(ExperimentError):
            SweepGrid().add_axis("a", [])

    def test_rejects_duplicate_axis(self):
        grid = SweepGrid().add_axis("a", [1])
        with pytest.raises(ExperimentError):
            grid.add_axis("a", [2])


class TestRunSweep:
    def test_merges_params_and_measurements(self):
        grid = SweepGrid().add_axis("n", [1, 2, 3])
        records = run_sweep(grid, lambda n: {"square": n * n})
        assert records == [
            {"n": 1, "square": 1},
            {"n": 2, "square": 4},
            {"n": 3, "square": 9},
        ]

    def test_rejects_key_collision(self):
        grid = SweepGrid().add_axis("n", [1])
        with pytest.raises(ExperimentError, match="collide"):
            run_sweep(grid, lambda n: {"n": 99})

    def test_progress_callback(self):
        seen = []
        grid = SweepGrid().add_axis("n", [5, 6])
        run_sweep(
            grid,
            lambda n: {"out": n},
            progress=lambda i, total, params: seen.append((i, total, params["n"])),
        )
        assert seen == [(0, 2, 5), (1, 2, 6)]


class TestPivot:
    def test_single_series(self):
        records = [{"x": 1, "y": 10}, {"x": 2, "y": 20}]
        lines = pivot(records, "x", "y")
        assert lines == {"": [(1, 10), (2, 20)]}

    def test_multi_series(self):
        records = [
            {"x": 1, "y": 10, "policy": "lru"},
            {"x": 1, "y": 12, "policy": "lfu"},
            {"x": 2, "y": 8, "policy": "lru"},
        ]
        lines = pivot(records, "x", "y", series="policy")
        assert lines["lru"] == [(1, 10), (2, 8)]
        assert lines["lfu"] == [(1, 12)]

    def test_missing_key_raises(self):
        with pytest.raises(ExperimentError, match="missing"):
            pivot([{"x": 1}], "x", "y")
