"""Unit tests for the parameter sweep runner."""

import pytest

from repro.errors import ExperimentError
from repro.sim.sweep import POINT_SECONDS_KEY, SweepGrid, pivot, run_sweep


def square_point(n):
    """Module-level (hence picklable) point runner for parallel tests."""
    return {"square": n * n}


class TestSweepGrid:
    def test_points_cartesian(self):
        grid = SweepGrid().add_axis("a", [1, 2]).add_axis("b", ["x", "y"])
        points = grid.points()
        assert len(points) == 4
        assert {"a": 1, "b": "x"} in points
        assert {"a": 2, "b": "y"} in points

    def test_order_deterministic(self):
        grid = SweepGrid().add_axis("a", [1, 2]).add_axis("b", [10, 20])
        assert grid.points()[0] == {"a": 1, "b": 10}
        assert grid.points()[1] == {"a": 1, "b": 20}

    def test_len(self):
        grid = SweepGrid().add_axis("a", [1, 2, 3]).add_axis("b", [1, 2])
        assert len(grid) == 6

    def test_empty_grid_single_point(self):
        assert SweepGrid().points() == [{}]

    def test_rejects_empty_axis(self):
        with pytest.raises(ExperimentError):
            SweepGrid().add_axis("a", [])

    def test_rejects_duplicate_axis(self):
        grid = SweepGrid().add_axis("a", [1])
        with pytest.raises(ExperimentError):
            grid.add_axis("a", [2])


class TestRunSweep:
    def test_merges_params_and_measurements(self):
        grid = SweepGrid().add_axis("n", [1, 2, 3])
        records = run_sweep(grid, lambda n: {"square": n * n})
        assert records == [
            {"n": 1, "square": 1},
            {"n": 2, "square": 4},
            {"n": 3, "square": 9},
        ]

    def test_rejects_key_collision(self):
        grid = SweepGrid().add_axis("n", [1])
        with pytest.raises(ExperimentError, match="collide"):
            run_sweep(grid, lambda n: {"n": 99})

    def test_progress_callback(self):
        seen = []
        grid = SweepGrid().add_axis("n", [5, 6])
        run_sweep(
            grid,
            lambda n: {"out": n},
            progress=lambda i, total, params: seen.append((i, total, params["n"])),
        )
        assert seen == [(0, 2, 5), (1, 2, 6)]

    def test_progress_callback_receives_elapsed(self):
        seen = []
        grid = SweepGrid().add_axis("n", [5, 6])
        run_sweep(
            grid,
            lambda n: {"out": n},
            progress=lambda i, total, params, elapsed: seen.append(
                (i, total, params["n"], elapsed)
            ),
        )
        assert [entry[:3] for entry in seen] == [(0, 2, 5), (1, 2, 6)]
        elapsed_values = [entry[3] for entry in seen]
        assert all(value >= 0.0 for value in elapsed_values)
        assert elapsed_values[0] <= elapsed_values[1]

    def test_timing_adds_point_seconds(self):
        grid = SweepGrid().add_axis("n", [1, 2])
        records = run_sweep(grid, lambda n: {"out": n}, timing=True)
        for record in records:
            assert record[POINT_SECONDS_KEY] >= 0.0
        # Without timing, records carry no timing key (exact-equality
        # consumers depend on this).
        untimed = run_sweep(grid, lambda n: {"out": n})
        assert all(POINT_SECONDS_KEY not in record for record in untimed)

    def test_timing_key_collision_rejected(self):
        grid = SweepGrid().add_axis("n", [1])
        with pytest.raises(ExperimentError, match="collide"):
            run_sweep(
                grid, lambda n: {POINT_SECONDS_KEY: 1.0}, timing=True
            )


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        grid = SweepGrid().add_axis("n", [1, 2, 3, 4, 5])
        serial = run_sweep(grid, square_point)
        parallel = run_sweep(grid, square_point, workers=4)
        assert parallel == serial
        assert [record["n"] for record in parallel] == [1, 2, 3, 4, 5]

    def test_unpicklable_callable_falls_back_to_serial(self):
        # A lambda cannot cross a process boundary; workers>1 must still
        # produce the serial result rather than raise.
        grid = SweepGrid().add_axis("n", [1, 2, 3])
        records = run_sweep(grid, lambda n: {"square": n * n}, workers=4)
        assert records == run_sweep(grid, square_point)

    def test_parallel_progress_order(self):
        seen = []
        grid = SweepGrid().add_axis("n", [1, 2, 3, 4])
        run_sweep(
            grid,
            square_point,
            workers=2,
            progress=lambda i, total, params, elapsed: seen.append((i, params["n"])),
        )
        assert seen == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_single_point_grid_stays_serial(self):
        grid = SweepGrid().add_axis("n", [7])
        assert run_sweep(grid, square_point, workers=8) == [
            {"n": 7, "square": 49}
        ]

    def test_parallel_point_errors_propagate(self):
        grid = SweepGrid().add_axis("n", [1])
        with pytest.raises(ExperimentError, match="collide"):
            run_sweep(
                SweepGrid().add_axis("n", [1, 2]), square_colliding, workers=2
            )


def square_colliding(n):
    """Point runner that collides with its own parameter name."""
    return {"n": n}


class TestPivot:
    def test_single_series(self):
        records = [{"x": 1, "y": 10}, {"x": 2, "y": 20}]
        lines = pivot(records, "x", "y")
        assert lines == {"": [(1, 10), (2, 20)]}

    def test_multi_series(self):
        records = [
            {"x": 1, "y": 10, "policy": "lru"},
            {"x": 1, "y": 12, "policy": "lfu"},
            {"x": 2, "y": 8, "policy": "lru"},
        ]
        lines = pivot(records, "x", "y", series="policy")
        assert lines["lru"] == [(1, 10), (2, 8)]
        assert lines["lfu"] == [(1, 12)]

    def test_missing_key_raises(self):
        with pytest.raises(ExperimentError, match="missing"):
            pivot([{"x": 1}], "x", "y")
