"""Unit tests for the inter-file relationship graph."""

import pytest

from repro.core.graph import RelationshipGraph


@pytest.fixture
def figure1_graph():
    """A graph shaped like the paper's Figure 1 example.

    Edge weights encode the priority ordering: B->C stronger than B->D,
    etc.  Seven files A..G.
    """
    graph = RelationshipGraph()
    observations = (
        [("A", "B")] * 3
        + [("B", "C")] * 3
        + [("B", "D")] * 2
        + [("C", "A")] * 2
        + [("D", "E")] * 3
        + [("D", "F")] * 1
        + [("E", "G")] * 2
        + [("F", "G")] * 2
        + [("G", "D")] * 1
    )
    for source, target in observations:
        graph.add_observation(source, target)
    return graph


class TestConstruction:
    def test_from_sequence(self):
        graph = RelationshipGraph.from_sequence(["a", "b", "a", "b", "c"])
        assert graph.edge_weight("a", "b") == 2
        assert graph.edge_weight("b", "a") == 1
        assert graph.edge_weight("b", "c") == 1

    def test_nodes(self, figure1_graph):
        assert figure1_graph.nodes() == set("ABCDEFG")

    def test_edges_sorted_by_weight(self, figure1_graph):
        edges = figure1_graph.edges()
        weights = [edge.weight for edge in edges]
        assert weights == sorted(weights, reverse=True)

    def test_empty_sequence(self):
        graph = RelationshipGraph.from_sequence([])
        assert graph.nodes() == set()
        assert graph.edges() == []


class TestQueries:
    def test_successors_of_ranked(self, figure1_graph):
        ranked = figure1_graph.successors_of("B")
        assert ranked[0] == ("C", 3)
        assert ranked[1] == ("D", 2)

    def test_successors_of_k_limits(self, figure1_graph):
        assert len(figure1_graph.successors_of("B", k=1)) == 1

    def test_succession_probability(self, figure1_graph):
        assert figure1_graph.succession_probability("B", "C") == pytest.approx(0.6)
        assert figure1_graph.succession_probability("B", "Z") == 0.0
        assert figure1_graph.succession_probability("Z", "B") == 0.0

    def test_out_degree(self, figure1_graph):
        assert figure1_graph.out_degree("B") == 2
        assert figure1_graph.out_degree("Z") == 0


class TestGrouping:
    def test_group_follows_strongest_chain(self, figure1_graph):
        group = figure1_graph.group_for("A", 3)
        # A's strongest successor is B, whose strongest is C.
        assert group == ["A", "B", "C"]

    def test_group_skips_cycles(self, figure1_graph):
        # C -> A -> B -> C would cycle; the builder must not revisit.
        group = figure1_graph.group_for("C", 4)
        assert len(group) == len(set(group))
        assert group[0] == "C"

    def test_group_size_one(self, figure1_graph):
        assert figure1_graph.group_for("A", 1) == ["A"]

    def test_group_size_zero(self, figure1_graph):
        assert figure1_graph.group_for("A", 0) == []

    def test_group_with_no_metadata(self):
        graph = RelationshipGraph()
        assert graph.group_for("lonely", 5) == ["lonely"]

    def test_covering_groups_cover_all_nodes(self, figure1_graph):
        groups = figure1_graph.covering_groups(3)
        covered = {member for group in groups for member in group}
        assert covered == figure1_graph.nodes()

    def test_covering_groups_may_overlap(self):
        # Hub 'h' follows both 'a' and 'b' strongly: it should appear in
        # multiple groups rather than forcing a partition.
        graph = RelationshipGraph()
        for _ in range(5):
            graph.add_observation("a", "h")
            graph.add_observation("b", "h")
            graph.add_observation("h", "a")
        graph._access_counts.update({"a": 10, "b": 10, "h": 10})
        groups = graph.covering_groups(2)
        containing_h = [g for g in groups if "h" in g]
        assert len(containing_h) >= 2

    def test_covering_groups_minimality(self, figure1_graph):
        # A node already covered must not seed its own group.
        groups = figure1_graph.covering_groups(7)
        assert len(groups) < len(figure1_graph.nodes())


class TestNetworkxExport:
    def test_export(self, figure1_graph):
        nx_graph = figure1_graph.to_networkx()
        assert nx_graph.number_of_nodes() == 7
        assert nx_graph["B"]["C"]["weight"] == 3
