"""Unit tests for the throughput telemetry module."""

import json
import time

from repro.sim.perf import PerfTimer, PhaseStats, ThroughputReport, measure_replay


class TestPhaseStats:
    def test_events_per_second(self):
        phase = PhaseStats(name="replay", seconds=2.0, events=1000)
        assert phase.events_per_second == 500.0

    def test_zero_time_is_zero_rate(self):
        assert PhaseStats(name="x").events_per_second == 0.0


class TestPerfTimer:
    def test_phase_accumulates_time_and_events(self):
        timer = PerfTimer()
        with timer.phase("work", events=10):
            time.sleep(0.01)
        with timer.phase("work", events=5):
            pass
        report = timer.report()
        assert report.total_events == 15
        assert report.total_seconds >= 0.01
        assert len(report.phases) == 1
        assert report.phases[0].entries == 2

    def test_add_credits_external_time(self):
        timer = PerfTimer()
        timer.add("sweep", 2.0, events=100)
        timer.add("sweep", 1.0, events=50)
        report = timer.report()
        assert report.total_seconds == 3.0
        assert report.total_events == 150
        assert report.events_per_second == 50.0

    def test_phases_keep_first_use_order(self):
        timer = PerfTimer()
        timer.add("generate", 0.1)
        timer.add("replay", 0.2)
        timer.add("generate", 0.1)
        assert [phase.name for phase in timer.report().phases] == [
            "generate",
            "replay",
        ]

    def test_report_is_a_snapshot(self):
        timer = PerfTimer()
        timer.add("work", 1.0, events=1)
        report = timer.report()
        timer.add("work", 1.0, events=1)
        assert report.total_events == 1


class TestThroughputReport:
    def test_as_dict_is_json_ready(self):
        timer = PerfTimer()
        timer.add("replay", 2.0, events=100)
        payload = timer.report().as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["events_per_second"] == 50.0
        assert payload["phases"]["replay"]["events"] == 100

    def test_as_rows_has_header_and_total(self):
        timer = PerfTimer()
        timer.add("a", 1.0, events=10)
        timer.add("b", 1.0, events=20)
        rows = timer.report().as_rows()
        assert rows[0] == ["phase", "seconds", "events", "events/s"]
        assert rows[-1][0] == "total"
        assert len(rows) == 4

    def test_summary_mentions_throughput(self):
        timer = PerfTimer()
        timer.add("replay", 1.0, events=2500)
        summary = timer.report().summary()
        assert "2,500 events" in summary
        assert "events/s" in summary

    def test_empty_report(self):
        report = ThroughputReport()
        assert report.total_seconds == 0.0
        assert report.events_per_second == 0.0
        assert report.summary()


class TestMeasureReplay:
    def test_single_phase_report(self):
        calls = []
        report = measure_replay(lambda: calls.append(1), events=42)
        assert calls == [1]
        assert report.total_events == 42
        assert [phase.name for phase in report.phases] == ["replay"]
