"""Unit tests for FIFO, CLOCK, Random, MQ, ARC, OPT, and NullCache."""

import random

import pytest

from repro.caching import POLICIES, make_cache
from repro.caching.arc import ARCCache
from repro.caching.base import NullCache
from repro.caching.clock import ClockCache
from repro.caching.fifo import FIFOCache
from repro.caching.mq import MQCache
from repro.caching.opt import OPTCache, opt_miss_count
from repro.caching.random_cache import RandomCache
from repro.errors import SimulationError


class TestFIFO:
    def test_hits_do_not_promote(self):
        cache = FIFOCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # hit, but a stays oldest
        cache.access("c")  # evicts a
        assert "a" not in cache
        assert "b" in cache

    def test_insertion_order_eviction(self):
        cache = FIFOCache(3)
        for key in "abc":
            cache.access(key)
        cache.access("d")
        assert "a" not in cache


class TestClock:
    def test_second_chance(self):
        cache = ClockCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # sets a's reference bit
        cache.access("c")  # b lacks the bit -> evicted before a
        assert "a" in cache
        assert "b" not in cache

    def test_sweep_clears_bits(self):
        cache = ClockCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")
        cache.access("b")  # both referenced
        cache.access("c")  # sweep clears both, evicts one
        assert len(cache) == 2
        assert "c" in cache

    def test_invalidate_preserves_consistency(self):
        cache = ClockCache(3)
        for key in "abc":
            cache.access(key)
        cache.invalidate("b")
        cache.access("d")
        cache.access("e")
        assert len(cache) == 3

    def test_drain_and_refill(self):
        cache = ClockCache(2)
        for key in "ab":
            cache.access(key)
        cache.invalidate("a")
        cache.invalidate("b")
        assert len(cache) == 0
        cache.access("x")
        assert "x" in cache


class TestRandom:
    def test_capacity_respected(self):
        cache = RandomCache(5, rng=random.Random(7))
        for i in range(100):
            cache.access(f"k{i}")
        assert len(cache) == 5

    def test_deterministic_with_seed(self):
        def run():
            cache = RandomCache(3, rng=random.Random(42))
            for i in range(50):
                cache.access(f"k{i % 7}")
            return sorted(cache.keys()), cache.stats.hits

        assert run() == run()

    def test_remove_last_slot(self):
        cache = RandomCache(3, rng=random.Random(1))
        cache.access("a")
        cache.access("b")
        cache.invalidate("b")  # remove the most recent slot
        assert "a" in cache
        assert len(cache) == 1


class TestMQ:
    def test_frequency_promotes_queue(self):
        cache = MQCache(4, queue_count=4)
        cache.access("a")
        assert cache.queue_index_of("a") == 0
        cache.access("a")  # count 2 -> queue 1
        assert cache.queue_index_of("a") == 1
        for _ in range(2):
            cache.access("a")  # count 4 -> queue 2
        assert cache.queue_index_of("a") == 2

    def test_evicts_from_lowest_queue(self):
        cache = MQCache(2, queue_count=4)
        cache.access("hot")
        cache.access("hot")
        cache.access("cold")
        cache.access("new")  # cold (queue 0) evicted, hot (queue 1) kept
        assert "hot" in cache
        assert "cold" not in cache

    def test_history_restores_frequency(self):
        cache = MQCache(2, queue_count=4, history_capacity=16)
        for _ in range(4):
            cache.access("a")  # queue 2
        cache.access("b")
        cache.access("c")  # evicts b (queue 0)
        assert "b" not in cache
        cache.access("b")  # remembered count 1 -> re-enters at count 2
        assert cache.queue_index_of("b") == 1

    def test_expired_heads_demote(self):
        cache = MQCache(4, queue_count=4, life_time=2)
        cache.access("a")
        cache.access("a")  # queue 1
        for i in range(6):
            cache.access(f"f{i % 2}")  # advance the clock well past expiry
        assert cache.queue_index_of("a") == 0

    def test_capacity(self):
        cache = MQCache(3)
        for i in range(10):
            cache.access(f"k{i}")
        assert len(cache) == 3


class TestARC:
    def test_capacity_never_exceeded(self):
        cache = ARCCache(4)
        for i in range(100):
            cache.access(f"k{i % 11}")
        assert len(cache) <= 4

    def test_hit_moves_to_frequent(self):
        cache = ARCCache(4)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.access("c")
        cache.access("d")
        cache.access("e")  # pressure on T1; 'a' (in T2) should survive
        assert "a" in cache

    def test_scan_resistance(self):
        # A scan of one-time keys should not flush a re-referenced set.
        cache = ARCCache(8)
        working = [f"w{i}" for i in range(4)]
        for _ in range(4):
            for key in working:
                cache.access(key)
        for i in range(32):
            cache.access(f"scan{i}")
        hits_before = cache.stats.hits
        for key in working:
            cache.access(key)
        # At least some of the working set survived the scan.
        assert cache.stats.hits > hits_before

    def test_ghost_hit_adapts_target(self):
        cache = ARCCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # promotes a to T2
        cache.access("c")  # REPLACE evicts b into the B1 ghost list
        cache.access("b")  # ghost hit: p grows
        assert cache.recency_target > 0.0

    def test_remove(self):
        cache = ARCCache(2)
        cache.access("a")
        assert cache.invalidate("a")
        assert "a" not in cache
        with pytest.raises(KeyError):
            cache._remove("zzz")


class TestOPT:
    def test_optimal_on_cyclic(self):
        files = [f"f{i}" for i in range(4)]
        seq = files * 10
        # Capacity 3 on a 4-cycle: OPT misses 4 cold + keeps 2 of the
        # cycle resident... compute against brute LRU which misses all.
        misses = opt_miss_count(3, seq)
        assert misses < len(seq)
        assert misses >= 4  # at least the cold misses

    def test_opt_not_worse_than_lru(self):
        from repro.caching.lru import LRUCache

        rng = random.Random(9)
        seq = [f"f{rng.randrange(30)}" for _ in range(2000)]
        lru = LRUCache(10)
        for key in seq:
            lru.access(key)
        assert opt_miss_count(10, seq) <= lru.stats.misses

    def test_rejects_out_of_order_drive(self):
        cache = OPTCache(2, ["a", "b"])
        cache.access("a")
        with pytest.raises(SimulationError, match="expected access"):
            cache.access("z")

    def test_rejects_overrun(self):
        cache = OPTCache(2, ["a"])
        cache.access("a")
        with pytest.raises(SimulationError, match="past the end"):
            cache.access("a")

    def test_evicts_farthest_next_use(self):
        # a reused soon, b reused late, c new: with capacity 2 OPT
        # evicts b when c arrives.
        seq = ["a", "b", "c", "a", "c", "a", "b"]
        cache = OPTCache(2, seq)
        for key in seq[:3]:
            cache.access(key)
        assert "b" not in cache
        assert "a" in cache


class TestNullCache:
    def test_always_misses(self):
        cache = NullCache()
        assert cache.access("a") is False
        assert cache.access("a") is False
        assert cache.stats.misses == 2
        assert len(cache) == 0

    def test_install_is_noop(self):
        cache = NullCache()
        assert cache.install("a") is False
        assert "a" not in cache


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in POLICIES:
            cache = make_cache(name, 4)
            cache.access("x")
            assert cache.policy_name == name

    def test_unknown_policy_error_lists_names(self):
        with pytest.raises(KeyError, match="lru"):
            make_cache("belady", 4)

    def test_capacity_invariant_across_policies(self):
        rng = random.Random(3)
        seq = [f"k{rng.randrange(40)}" for _ in range(1500)]
        for name in POLICIES:
            cache = make_cache(name, 8)
            for key in seq:
                cache.access(key)
            assert len(cache) <= 8, name

    def test_stats_consistency_across_policies(self):
        seq = ["a", "b", "a", "c", "a", "b"] * 20
        for name in POLICIES:
            cache = make_cache(name, 4)
            for key in seq:
                cache.access(key)
            stats = cache.stats
            assert stats.hits + stats.misses == len(seq), name
