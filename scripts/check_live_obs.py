#!/usr/bin/env python
"""Live-observability smoke: attach, converge, and catch an injected shift.

The CI ``live-obs-smoke`` leg (also ``make live-obs-smoke``)::

    PYTHONPATH=src python scripts/check_live_obs.py scenarios/smoke.json

* starts ``python -m repro serve <scenario>`` as a subprocess with an
  access log and event-count telemetry windows (deterministic window
  boundaries, no wall-clock dependence);
* slams it with the scenario's own workload while a
  :class:`~repro.obs.live.StatsStream` polls ``/stats?since=`` — then
  asserts the streamed windows *converge*: summed per-window hits,
  misses and events equal the daemon's lifetime cache counters;
* runs ``repro drift --url`` over the retained history and expects a
  clean exit (0, no alerts) on the steady phase;
* injects a workload shift — uniform random opens over a namespace far
  wider than the cache, collapsing the hit ratio — and expects
  ``repro drift --url --fail-on-drift`` to exit 2 with a hit-ratio
  alert.  (A *sequential* scan would not do: the group prefetcher
  absorbs it, which is the paper's point.)
* validates the access log: every line parses as JSON with the
  required fields and ids strictly increase;
* sends SIGTERM and asserts a clean daemon exit.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:  # runnable without PYTHONPATH too
    sys.path.insert(0, str(REPO_SRC))

from repro.obs.live import StatsStream  # noqa: E402
from repro.serve import ServeConnection, load_scenario, run_slam  # noqa: E402
from repro.workloads.synthetic import make_workload  # noqa: E402

PORT_WAIT_S = 20.0
EXIT_WAIT_S = 10.0
ACCESS_LOG_FIELDS = ("ts", "id", "endpoint", "method", "status", "latency_ns")


def _fail(message: str) -> "SystemExit":
    print(f"FAIL: {message}")
    return SystemExit(1)


def _wait_for_port(port_file: Path, process: subprocess.Popen) -> int:
    deadline = time.monotonic() + PORT_WAIT_S
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise _fail(
                f"daemon exited early with code {process.returncode} "
                f"before announcing a port"
            )
        try:
            text = port_file.read_text(encoding="utf-8").strip()
        except OSError:
            text = ""
        if text:
            return int(text)
        time.sleep(0.05)
    raise _fail(f"daemon did not announce a port within {PORT_WAIT_S:.0f}s")


def _run_drift(url: str, *extra: str) -> int:
    """Run ``repro drift --url`` as a subprocess, return its exit code."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    # --alpha 1 tests raw window values: each event-count window is
    # already a large sample, and EWMA smoothing would let the rolling
    # baseline absorb the shifted windows before the smoothed value
    # strays far enough to trip the z-test.
    command = [
        sys.executable, "-m", "repro", "drift",
        "--url", url, "--history", "8", "--alpha", "1", *extra,
    ]
    completed = subprocess.run(
        command, env=env, cwd=str(REPO_ROOT),
        capture_output=True, text=True,
    )
    sys.stdout.write(completed.stdout)
    sys.stderr.write(completed.stderr)
    return completed.returncode


def _check_convergence(url: str, scenario, events: int, workers: int) -> None:
    """Stream windows during a slam; sums must equal lifetime counters."""
    seed = scenario.seed if scenario.seed is not None else 0
    source = list(make_workload(scenario.workload, events, seed).file_ids())
    stream = StatsStream(url)
    report = run_slam(url, source, workers=workers, batch=16)
    if report.errors:
        raise _fail(f"slam reported {report.errors} request error(s)")
    if report.delta.get("server_errors"):
        raise _fail(
            f"daemon counted {report.delta['server_errors']} error(s) "
            f"during the slam: {report.delta.get('endpoint_errors')}"
        )

    # one final poll drains every window the slam closed; the partial
    # tail window stays open, so compare against the *windowed* portion
    windows = [w for w in stream.poll()]
    if not windows:
        raise _fail("StatsStream saw no telemetry windows during the slam")
    stats = stream.final_stats()
    stream.close()

    telemetry = stats["telemetry"]
    if telemetry["dropped"]:
        raise _fail(
            f"retention ring dropped {telemetry['dropped']} window(s) "
            f"mid-smoke; raise telemetry.retain in the scenario"
        )
    streamed_events = sum(w.sample.events for w in windows)
    streamed_hits = sum(w.sample.hits for w in windows)
    streamed_misses = sum(w.sample.misses for w in windows)
    cache = stats["cache"]
    tail_events = stats["accesses"] - streamed_events
    tail_hits = cache["hits"] - streamed_hits
    tail_misses = cache["misses"] - streamed_misses
    window_events = scenario.telemetry_window_events or 0
    if tail_events < 0 or (window_events and tail_events >= window_events):
        raise _fail(
            f"streamed window events ({streamed_events}) do not converge "
            f"to lifetime accesses ({stats['accesses']}); unflushed tail "
            f"of {tail_events} exceeds one window ({window_events})"
        )
    if tail_hits < 0 or tail_misses < 0 or tail_hits + tail_misses != tail_events:
        raise _fail(
            f"window hit/miss sums diverge from lifetime counters: "
            f"streamed {streamed_hits}h/{streamed_misses}m vs lifetime "
            f"{cache['hits']}h/{cache['misses']}m"
        )
    print(
        f"convergence OK: {len(windows)} window(s) streamed, "
        f"{streamed_events}/{stats['accesses']} events windowed "
        f"(tail {tail_events} still open), hits+misses reconcile"
    )


def _inject_shift(url: str, events: int, workers: int) -> None:
    """Collapse the hit ratio with uniform random opens over a wide space.

    The namespace is ~2.5x the event count and disjoint from the
    workload's, so almost every open misses and installed groups never
    get re-referenced — the one access pattern group prefetching cannot
    absorb.
    """
    rng = random.Random(11)
    shifted = [f"shifted/{rng.randrange(20000)}" for _ in range(events)]
    report = run_slam(url, shifted, workers=workers, batch=16)
    if report.errors:
        raise _fail(f"shift slam reported {report.errors} error(s)")
    print(
        f"injected shift: {events} uniform-random opens, served hit "
        f"ratio this run {report.served_hit_ratio:.3f}"
    )


def _check_access_log(path: Path) -> None:
    if not path.exists():
        raise _fail(f"access log {path} was never created")
    last_id = -1
    lines = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        record = json.loads(line)  # raises on a torn line
        for field in ACCESS_LOG_FIELDS:
            if field not in record:
                raise _fail(f"access log line missing {field!r}: {record}")
        if record["id"] <= last_id:
            raise _fail(
                f"access log ids not strictly increasing: "
                f"{record['id']} after {last_id}"
            )
        last_id = record["id"]
        lines += 1
    if lines == 0:
        raise _fail(f"access log {path} is empty")
    print(f"access log OK: {lines} valid JSONL line(s), ids monotonic")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenario", type=Path, help="scenario file to serve")
    parser.add_argument("--events", type=int, default=6000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--window-events", type=int, default=500,
        help="close a telemetry window every N accesses (deterministic)",
    )
    args = parser.parse_args(argv)

    scenario = load_scenario(args.scenario)
    scenario.telemetry_window_events = args.window_events

    with tempfile.TemporaryDirectory(prefix="repro-live-obs-") as tmp:
        port_file = Path(tmp) / "port"
        access_log = Path(tmp) / "access.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(args.scenario),
                "--port", "0", "--port-file", str(port_file),
                "--access-log", str(access_log),
                "--stats-window", "0",
                "--stats-window-events", str(args.window_events),
            ],
            env=env,
            cwd=str(REPO_ROOT),
        )
        try:
            port = _wait_for_port(port_file, process)
            url = f"http://127.0.0.1:{port}"
            print(f"daemon pid {process.pid} listening on {url}")

            _check_convergence(url, scenario, args.events, args.workers)

            code = _run_drift(url)
            if code != 0:
                raise _fail(
                    f"drift --url exited {code} on the steady phase "
                    f"(expected 0: no alerts on a stable workload)"
                )
            print("steady-phase drift check OK (exit 0)")

            _inject_shift(url, args.events, args.workers)

            code = _run_drift(url, "--fail-on-drift")
            if code != 2:
                raise _fail(
                    f"drift --url --fail-on-drift exited {code} after the "
                    f"injected shift (expected 2: hit-ratio alert)"
                )
            print("injected-shift drift check OK (exit 2)")

            _check_access_log(access_log)
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        try:
            exit_code = process.wait(timeout=EXIT_WAIT_S)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
            raise _fail(f"daemon ignored SIGTERM for {EXIT_WAIT_S:.0f}s")
        if exit_code != 0:
            raise _fail(f"daemon exited with code {exit_code} after SIGTERM")
        print("daemon exited cleanly on SIGTERM")
        print("live-obs smoke OK")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
