"""Regenerate results/csv/: every figure's data at full (60k) scale.

Usage: ``python scripts/export_csv.py [events]``
"""

import sys
from pathlib import Path

from repro.analysis.export import figure_to_csv
from repro.experiments import (
    run_adaptation,
    run_attribution,
    run_cooperation,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig7,
    run_fig8,
    run_hoarding,
    run_metadata_budget,
    run_peer_caching,
    run_placement,
    run_server_capacity,
)


def main() -> int:
    events = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    out = Path(__file__).resolve().parent.parent / "results" / "csv"
    out.mkdir(parents=True, exist_ok=True)

    figures = []
    for workload in ("server", "write"):
        figures.append(run_fig3(workload=workload, events=events))
    for workload in ("workstation", "users", "server"):
        figures.append(run_fig4(workload=workload, events=events))
    for workload in ("workstation", "server"):
        figures.append(run_fig5(workload=workload, events=events))
    figures.append(run_fig7(events=events))
    for workload in ("write", "users"):
        figures.append(run_fig8(workload=workload, events=events))
    figures += [
        run_placement(events=events),
        run_hoarding(events=events),
        run_cooperation(events=events),
        run_attribution(events=events),
        run_adaptation(events=events),
        run_server_capacity(events=events),
        run_peer_caching(events=events),
        run_metadata_budget(events=events),
    ]
    for figure in figures:
        figure_to_csv(figure, out / f"{figure.figure_id}.csv")
    print(f"wrote {len(figures)} CSVs to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
