"""Regenerate results/csv/: every figure's data at full (60k) scale.

Usage::

    python scripts/export_csv.py [events]
    python scripts/export_csv.py --timeseries series.jsonl [--out series.csv]

The ``--timeseries`` mode converts a ``repro.ts/1`` JSONL export (from
``repro metrics --window N --ts-out`` or ``repro top --ts-out``) into a
flat CSV — one row per window sample, derived ratios included — for
plotting in external tools.
"""

import argparse
import csv
import sys
from pathlib import Path

from repro.analysis.export import figure_to_csv

#: CSV column order for time-series exports: identity first, then raw
#: counters, then the derived ratios plotting tools want directly.
TS_COLUMNS = (
    "source",
    "index",
    "start",
    "events",
    "seconds",
    "hits",
    "misses",
    "hit_ratio",
    "remote_requests",
    "store_fetches",
    "bytes_fetched",
    "group_installs",
    "companion_slots",
    "speculative_fetches",
    "prefetch_efficiency",
    "wasted_fetch_share",
    "evictions",
    "eviction_rate",
    "invalidations",
    "entropy",
    "events_per_sec",
    "label",
)


def export_timeseries_csv(source: Path, destination: Path) -> int:
    """Convert one ``repro.ts/1`` JSONL file to CSV; returns rows written."""
    from repro.obs import load_ts_jsonl

    loaded = load_ts_jsonl(source)
    with destination.open("w", encoding="utf-8", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(TS_COLUMNS)
        for sample in loaded["samples"]:
            record = sample.to_dict()
            writer.writerow(
                ["" if record[column] is None else record[column] for column in TS_COLUMNS]
            )
    return len(loaded["samples"])


def export_figures(events: int) -> int:
    from repro.experiments import (
        run_adaptation,
        run_attribution,
        run_cooperation,
        run_fig3,
        run_fig4,
        run_fig5,
        run_fig7,
        run_fig8,
        run_hoarding,
        run_metadata_budget,
        run_peer_caching,
        run_placement,
        run_server_capacity,
    )

    out = Path(__file__).resolve().parent.parent / "results" / "csv"
    out.mkdir(parents=True, exist_ok=True)

    figures = []
    for workload in ("server", "write"):
        figures.append(run_fig3(workload=workload, events=events))
    for workload in ("workstation", "users", "server"):
        figures.append(run_fig4(workload=workload, events=events))
    for workload in ("workstation", "server"):
        figures.append(run_fig5(workload=workload, events=events))
    figures.append(run_fig7(events=events))
    for workload in ("write", "users"):
        figures.append(run_fig8(workload=workload, events=events))
    figures += [
        run_placement(events=events),
        run_hoarding(events=events),
        run_cooperation(events=events),
        run_attribution(events=events),
        run_adaptation(events=events),
        run_server_capacity(events=events),
        run_peer_caching(events=events),
        run_metadata_budget(events=events),
    ]
    for figure in figures:
        figure_to_csv(figure, out / f"{figure.figure_id}.csv")
    print(f"wrote {len(figures)} CSVs to {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "events",
        nargs="?",
        type=int,
        default=60_000,
        help="events per workload for figure CSVs (default: 60000)",
    )
    parser.add_argument(
        "--timeseries",
        type=Path,
        default=None,
        metavar="JSONL",
        help="convert one repro.ts/1 JSONL export to CSV instead",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="CSV destination for --timeseries (default: alongside the input)",
    )
    args = parser.parse_args(argv)
    if args.timeseries is not None:
        destination = (
            args.out
            if args.out is not None
            else args.timeseries.with_suffix(".csv")
        )
        rows = export_timeseries_csv(args.timeseries, destination)
        print(f"wrote {rows} time-series rows to {destination}")
        return 0
    return export_figures(args.events)


if __name__ == "__main__":
    sys.exit(main())
