#!/usr/bin/env python
"""Validate a ``repro.ts/1`` JSONL export (the CI time-series smoke).

CI produces a windowed series with ``repro metrics --window N --ts-out``
on a small synthetic workload and feeds it here.  The check round-trips
the file through :func:`repro.obs.timeseries.load_ts_jsonl` — which
enforces the schema record by record — and then cross-checks the
series' invariants:

* the meta line exists, carries the schema tag, and its ``samples``
  count matches the sample lines in the file;
* per source stream, ``index`` values are strictly increasing, and
  replay samples' window ``start`` offsets are strictly increasing
  with every window non-empty;
* replay counters are internally consistent (hits + misses == events
  for single-client replays is *not* assumed, but no counter may be
  negative and ratios must be in range);
* the series is non-trivial — at least one replay sample — so an
  accidentally-disabled collector cannot pass the smoke;
* the Prometheus text rendering of the loaded samples parses: every
  non-comment line is ``name value`` with a float value, every metric
  is declared by ``# TYPE``, and the output is ``# EOF``-terminated.

Run from the repo root::

    PYTHONPATH=src python scripts/check_timeseries.py series.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # runnable without PYTHONPATH too
    sys.path.insert(0, str(REPO_SRC))

from repro.obs.registry import ObservabilityError  # noqa: E402
from repro.obs.timeseries import (  # noqa: E402
    TS_SCHEMA,
    load_ts_jsonl,
    prometheus_text,
)


def _check_prometheus(text: str) -> List[str]:
    """Parse one Prometheus/OpenMetrics exposition; returns problems."""
    problems: List[str] = []
    declared = set()
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("prometheus text is not '# EOF'-terminated")
    for number, line in enumerate(lines, start=1):
        if not line or line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge"):
                problems.append(f"prometheus line {number}: bad TYPE: {line!r}")
            else:
                declared.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            problems.append(
                f"prometheus line {number}: expected 'name value': {line!r}"
            )
            continue
        name, value = parts
        if name not in declared:
            problems.append(
                f"prometheus line {number}: metric {name} has no # TYPE"
            )
        try:
            float(value)
        except ValueError:
            problems.append(
                f"prometheus line {number}: non-numeric value {value!r}"
            )
    return problems


def check_timeseries(path: Path, require_replay: bool = True) -> List[str]:
    """Validate one exported series; returns a list of problems."""
    problems: List[str] = []
    try:
        loaded = load_ts_jsonl(path)
    except (ObservabilityError, OSError) as error:
        return [str(error)]
    meta = loaded["meta"]
    samples = loaded["samples"]

    claimed = meta.get("samples")
    if claimed != len(samples):
        problems.append(
            f"meta claims {claimed} samples, file has {len(samples)}"
        )
    window = meta.get("window")
    if not isinstance(window, int) or window < 1:
        problems.append(f"meta window must be a positive int, got {window!r}")

    last_index = {}
    last_start = None
    replay_samples = 0
    for position, sample in enumerate(samples):
        where = f"sample {position} ({sample.source})"
        previous = last_index.get(sample.source)
        if previous is not None and sample.index <= previous:
            problems.append(
                f"{where}: index {sample.index} not strictly increasing "
                f"(previous {previous})"
            )
        last_index[sample.source] = sample.index
        if sample.source == "replay":
            replay_samples += 1
            if last_start is not None and sample.start <= last_start:
                problems.append(
                    f"{where}: window start {sample.start} not strictly "
                    f"increasing (previous {last_start})"
                )
            last_start = sample.start
            if sample.events < 1:
                problems.append(f"{where}: empty window ({sample.events} events)")
            if isinstance(window, int) and sample.events > window:
                problems.append(
                    f"{where}: {sample.events} events exceed window {window}"
                )
        for counter in (
            "events",
            "hits",
            "misses",
            "remote_requests",
            "store_fetches",
            "bytes_fetched",
            "group_installs",
            "evictions",
            "invalidations",
        ):
            if getattr(sample, counter) < 0:
                problems.append(
                    f"{where}: negative {counter} ({getattr(sample, counter)})"
                )
        for ratio in ("hit_ratio", "prefetch_efficiency", "wasted_fetch_share"):
            value = getattr(sample, ratio)
            if not 0.0 <= value <= 1.0:
                problems.append(f"{where}: {ratio} {value} outside [0, 1]")
        if sample.entropy is not None and sample.entropy < 0:
            problems.append(f"{where}: negative entropy ({sample.entropy})")
    if require_replay and not replay_samples:
        problems.append("no replay samples in the series (collector inactive?)")

    problems.extend(_check_prometheus(prometheus_text(samples)))
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=f"validate a {TS_SCHEMA} JSONL time-series export"
    )
    parser.add_argument(
        "series",
        type=Path,
        help="JSONL file from repro metrics --window N --ts-out",
    )
    parser.add_argument(
        "--allow-empty-replay",
        action="store_true",
        help="accept series with no replay samples (sweep-only exports)",
    )
    args = parser.parse_args(argv)

    problems = check_timeseries(
        args.series, require_replay=not args.allow_empty_replay
    )
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    loaded = load_ts_jsonl(args.series)
    print(
        f"timeseries ok: {args.series} ({len(loaded['samples'])} samples, "
        f"schema {TS_SCHEMA})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
