#!/usr/bin/env python
"""Validate a ``repro.trace/1`` JSONL export (the CI tracing smoke).

CI produces a trace with ``repro explain --out`` on a small synthetic
workload and feeds it here.  The check round-trips the file through
:func:`repro.obs.tracing.load_trace_jsonl` — which enforces the schema
record by record — and then cross-checks the meta line's accounting
against the records actually retained:

* the meta line exists, carries the schema tag, and its ``retained``
  count matches the number of record lines;
* every record kind is in the schema vocabulary and no kind exceeds
  its ``emitted`` total;
* ``seq`` values are strictly increasing (causal order is the trace's
  clock);
* the trace is non-trivial: at least one ``open`` and one
  ``group_fetch`` record, so an accidentally-disabled recorder cannot
  pass the smoke.

Run from the repo root::

    PYTHONPATH=src python scripts/check_trace.py trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
if str(REPO_SRC) not in sys.path:  # runnable without PYTHONPATH too
    sys.path.insert(0, str(REPO_SRC))

from repro.obs.registry import ObservabilityError  # noqa: E402
from repro.obs.tracing import TRACE_SCHEMA, load_trace_jsonl  # noqa: E402


def check_trace(path: Path, require_kinds: List[str]) -> List[str]:
    """Validate one exported trace; returns a list of problems."""
    problems: List[str] = []
    try:
        loaded = load_trace_jsonl(path)
    except (ObservabilityError, OSError) as error:
        return [str(error)]
    meta = loaded["meta"]
    records = loaded["records"]

    retained = meta.get("retained")
    if retained != len(records):
        problems.append(
            f"meta claims {retained} retained records, file has {len(records)}"
        )
    emitted = meta.get("emitted") or {}
    counts = {}
    last_seq = 0
    for record in records:
        counts[record["kind"]] = counts.get(record["kind"], 0) + 1
        if record["seq"] <= last_seq:
            problems.append(
                f"seq not strictly increasing at {record['kind']} "
                f"seq={record['seq']} (previous {last_seq})"
            )
        last_seq = record["seq"]
    for kind, count in sorted(counts.items()):
        total = emitted.get(kind, 0)
        if count > total:
            problems.append(
                f"{count} retained {kind} records but meta says only "
                f"{total} were emitted"
            )
    for kind in require_kinds:
        if not counts.get(kind):
            problems.append(f"no {kind} records retained (recorder inactive?)")
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description=f"validate a {TRACE_SCHEMA} JSONL trace export"
    )
    parser.add_argument("trace", type=Path, help="JSONL file from repro explain --out")
    parser.add_argument(
        "--require",
        action="append",
        default=None,
        metavar="KIND",
        help=(
            "record kind that must be present (repeatable; "
            "default: open, group_fetch)"
        ),
    )
    args = parser.parse_args(argv)
    require = args.require if args.require is not None else ["open", "group_fetch"]

    problems = check_trace(args.trace, require)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    loaded = load_trace_jsonl(args.trace)
    print(
        f"trace ok: {args.trace} ({len(loaded['records'])} records, "
        f"schema {TRACE_SCHEMA})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
