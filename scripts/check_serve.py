#!/usr/bin/env python
"""Serve/slam smoke: the daemon must agree with an in-process replay.

Self-contained mode (the CI ``serve-smoke`` leg, also ``make
serve-smoke``)::

    PYTHONPATH=src python scripts/check_serve.py scenarios/smoke.json

* starts ``python -m repro serve <scenario> --port-file <tmp>`` as a
  subprocess and waits for the bound port to be announced;
* slams it with the scenario's own workload from worker processes
  (default ``--events 5000 --workers 2``);
* downloads the daemon's access journal (``GET /journal``) and replays
  it through a fresh, identically-configured
  :class:`~repro.core.aggregating_cache.AggregatingServerCache`;
* asserts the served hit-ratio matches the in-process replay within
  ``--tolerance`` (default 1%).  Because the journal records the
  daemon's own arrival order, the counts are expected to match
  *exactly* — the tolerance only exists as the acceptance bound;
* sends SIGTERM and asserts the daemon exits cleanly (code 0) without
  leaving the socket behind.

Checking a daemon somebody else started::

    python scripts/check_serve.py scenarios/smoke.json --url http://127.0.0.1:8080

In ``--url`` mode the script only slams and compares; lifecycle
(start/SIGTERM/exit-code) stays with the caller.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:  # runnable without PYTHONPATH too
    sys.path.insert(0, str(REPO_SRC))

from repro.serve import (  # noqa: E402
    ServeConnection,
    load_scenario,
    run_slam,
)
from repro.serve.schema import replay_journal  # noqa: E402
from repro.workloads.synthetic import make_workload  # noqa: E402

PORT_WAIT_S = 20.0
EXIT_WAIT_S = 10.0


def _fail(message: str) -> "SystemExit":
    print(f"FAIL: {message}")
    return SystemExit(1)


def _wait_for_port(port_file: Path, process: subprocess.Popen) -> int:
    deadline = time.monotonic() + PORT_WAIT_S
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise _fail(
                f"daemon exited early with code {process.returncode} "
                f"before announcing a port"
            )
        try:
            text = port_file.read_text(encoding="utf-8").strip()
        except OSError:
            text = ""
        if text:
            return int(text)
        time.sleep(0.05)
    raise _fail(f"daemon did not announce a port within {PORT_WAIT_S:.0f}s")


def _check_against(url: str, scenario, events: int, workers: int, batch: int,
                   tolerance: float) -> int:
    """Slam ``url`` and compare the served counters with a journal replay."""
    seed = scenario.seed if scenario.seed is not None else 0
    trace = make_workload(scenario.workload, events, seed)
    source = list(trace.file_ids())
    report = run_slam(url, source, workers=workers, batch=batch)
    if report.errors:
        raise _fail(f"slam reported {report.errors} request error(s)")
    if report.events != events:
        raise _fail(f"slam replayed {report.events} events, expected {events}")

    conn = ServeConnection(url)
    try:
        stats = conn.stats()
        _status, journal = conn.request("GET", "/journal")
    finally:
        conn.close()

    if journal.get("truncated"):
        raise _fail(
            "daemon journal is truncated; raise journal.max_events in the "
            "scenario (or restart the daemon) so the replay check can run"
        )
    entries = journal.get("entries", [])
    fresh = scenario.build_cache()
    replay_journal(fresh, entries)
    local = fresh.stats_dict()
    served = stats["cache"]

    for key in ("hits", "misses", "accesses", "evictions", "group_fetches"):
        if served.get(key) != local.get(key):
            print(
                f"note: served {key}={served.get(key)} vs journal replay "
                f"{key}={local.get(key)}"
            )
    served_ratio = float(served["hit_ratio"])
    local_ratio = float(local["hit_ratio"])
    delta = abs(served_ratio - local_ratio)
    print(
        f"served hit-ratio {served_ratio:.6f} vs journal replay "
        f"{local_ratio:.6f} (|delta| {delta:.6f}, tolerance {tolerance})"
    )
    if delta > tolerance:
        raise _fail(
            f"served hit-ratio diverges from in-process replay by {delta:.6f} "
            f"(> {tolerance})"
        )
    print(
        f"OK: {report.events} events via {workers} worker(s), "
        f"p50 {report.p50_ms:.3f}ms p99 {report.p99_ms:.3f}ms, "
        f"{report.events_per_sec:,.0f} events/s, "
        f"{report.retries} retrie(s)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenario", type=Path, help="scenario file to serve/compare")
    parser.add_argument(
        "--url",
        default="",
        help="check an already-running daemon instead of spawning one",
    )
    parser.add_argument("--events", type=int, default=5000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--tolerance", type=float, default=0.01)
    args = parser.parse_args(argv)

    scenario = load_scenario(args.scenario)
    if args.url:
        return _check_against(
            args.url, scenario, args.events, args.workers, args.batch,
            args.tolerance,
        )

    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        port_file = Path(tmp) / "port"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(args.scenario),
                "--port", "0", "--port-file", str(port_file),
            ],
            env=env,
            cwd=str(REPO_ROOT),
        )
        try:
            port = _wait_for_port(port_file, process)
            url = f"http://127.0.0.1:{port}"
            print(f"daemon pid {process.pid} listening on {url}")
            code = _check_against(
                url, scenario, args.events, args.workers, args.batch,
                args.tolerance,
            )
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        try:
            exit_code = process.wait(timeout=EXIT_WAIT_S)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
            raise _fail(f"daemon ignored SIGTERM for {EXIT_WAIT_S:.0f}s")
        if exit_code != 0:
            raise _fail(f"daemon exited with code {exit_code} after SIGTERM")
        print("daemon exited cleanly on SIGTERM")
        return code


if __name__ == "__main__":
    raise SystemExit(main())
