#!/usr/bin/env python
"""Gate benchmark throughput against the committed baseline.

Compares a fresh pytest-benchmark JSON file (``make bench-smoke
BENCH_JSON=BENCH_fresh.json``) against the committed baseline
(``BENCH_micro.json``) and exits non-zero when any benchmark's
events-per-second throughput regresses by more than the threshold
(default 25%).

Throughput comes from each benchmark's ``extra_info.events_per_second``
when the suite recorded one (the system replay benches do), otherwise
from ``1 / stats.median`` — both monotone in "work per second", so one
threshold covers both.  Benchmarks present on only one side are
reported as warnings, not failures: renames and additions must not
break CI, only genuine slowdowns should.

Stdlib-only, so the gate runs anywhere the test suite runs::

    python scripts/check_bench.py --baseline BENCH_micro.json \
        --fresh BENCH_fresh.json [--threshold 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple


class BenchCheckError(Exception):
    """A baseline or fresh file that cannot be interpreted."""


def load_benchmarks(path: Path) -> Dict[str, Dict[str, Any]]:
    """Map benchmark name -> benchmark record from a pytest-benchmark JSON."""
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchCheckError(f"benchmark file not found: {path}")
    except json.JSONDecodeError as error:
        raise BenchCheckError(f"invalid JSON in {path}: {error}")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise BenchCheckError(f"{path} has no benchmarks")
    table: Dict[str, Dict[str, Any]] = {}
    for bench in benchmarks:
        name = bench.get("name")
        if name:
            table[name] = bench
    return table


def events_per_second(bench: Dict[str, Any]) -> Optional[float]:
    """A benchmark's throughput figure, or None when unmeasurable.

    Prefers the suite's own ``extra_info.events_per_second`` (real
    events processed per second); falls back to ``1 / stats.median``
    (iterations per second), which ranks identically under a ratio
    threshold.
    """
    extra = bench.get("extra_info") or {}
    eps = extra.get("events_per_second")
    if isinstance(eps, (int, float)) and eps > 0:
        return float(eps)
    stats = bench.get("stats") or {}
    median = stats.get("median")
    if isinstance(median, (int, float)) and median > 0:
        return 1.0 / median
    return None


def compare(
    baseline: Dict[str, Dict[str, Any]],
    fresh: Dict[str, Dict[str, Any]],
    threshold: float = 0.25,
) -> Tuple[List[Dict[str, Any]], List[str], List[str]]:
    """Compare throughput per benchmark name.

    Returns ``(comparisons, missing, extra)``: one comparison record per
    common name (with ``regressed`` set when fresh throughput fell below
    ``baseline * (1 - threshold)``), names only in the baseline, and
    names only in the fresh run.
    """
    comparisons: List[Dict[str, Any]] = []
    missing = sorted(set(baseline) - set(fresh))
    extra = sorted(set(fresh) - set(baseline))
    for name in sorted(set(baseline) & set(fresh)):
        base_eps = events_per_second(baseline[name])
        fresh_eps = events_per_second(fresh[name])
        if base_eps is None or fresh_eps is None:
            continue
        ratio = fresh_eps / base_eps
        comparisons.append(
            {
                "name": name,
                "baseline_eps": base_eps,
                "fresh_eps": fresh_eps,
                "ratio": ratio,
                "regressed": ratio < 1.0 - threshold,
            }
        )
    return comparisons, missing, extra


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark throughput regresses vs. the baseline"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("BENCH_micro.json"),
        help="committed baseline JSON (default: BENCH_micro.json)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="freshly produced benchmark JSON to gate",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop (default: 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error(f"--threshold must be in (0, 1), got {args.threshold}")

    try:
        baseline = load_benchmarks(args.baseline)
        fresh = load_benchmarks(args.fresh)
    except BenchCheckError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    comparisons, missing, extra = compare(baseline, fresh, args.threshold)
    for name in missing:
        print(f"warning: benchmark only in baseline (skipped): {name}")
    for name in extra:
        print(f"warning: benchmark only in fresh run (skipped): {name}")
    if not comparisons:
        print("error: no common benchmarks to compare", file=sys.stderr)
        return 1

    regressions = 0
    for row in comparisons:
        marker = "REGRESSION" if row["regressed"] else "ok"
        print(
            f"{marker:>10}  {row['name']}: "
            f"{row['baseline_eps']:,.0f} -> {row['fresh_eps']:,.0f} eps "
            f"({row['ratio']:.2%} of baseline)"
        )
        if row["regressed"]:
            regressions += 1
    if regressions:
        print(
            f"error: {regressions} benchmark(s) regressed more than "
            f"{args.threshold:.0%}",
            file=sys.stderr,
        )
        return 1
    print(f"bench gate passed: {len(comparisons)} benchmark(s) within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
