#!/usr/bin/env python
"""Gate benchmark throughput against the committed baseline.

Compares a fresh pytest-benchmark JSON file (``make bench-smoke
BENCH_JSON=BENCH_fresh.json``) against the committed baseline
(``BENCH_micro.json``) and exits non-zero when any benchmark's
events-per-second throughput regresses by more than the threshold
(default 25%).

Throughput comes from each benchmark's ``extra_info.events_per_second``
when the suite recorded one (the system replay benches do), otherwise
from ``1 / stats.median`` — both monotone in "work per second", so one
threshold covers both.  Benchmarks present on only one side are
reported as warnings, not failures: renames and additions must not
break CI, only genuine slowdowns should.

Named benchmarks can be held to a tighter bar with ``--strict``: each
``--strict NAME`` is gated at ``--strict-threshold`` (default 5%)
instead of the general threshold, and a strict name absent from either
file is an *error*, not a warning — a silently missing strict bench
would void the guarantee it exists to enforce.  CI uses this as the
tracing-disabled overhead check: the replay fast-path benchmarks run
with observability off, so holding them within 5% of the committed
baseline proves the flight-recorder instrumentation costs nothing when
dormant.

Stdlib-only, so the gate runs anywhere the test suite runs::

    python scripts/check_bench.py --baseline BENCH_micro.json \
        --fresh BENCH_fresh.json [--threshold 0.25] \
        [--strict test_system_replay_throughput --strict-threshold 0.05]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple


class BenchCheckError(Exception):
    """A baseline or fresh file that cannot be interpreted."""


def load_benchmarks(path: Path) -> Dict[str, Dict[str, Any]]:
    """Map benchmark name -> benchmark record from a pytest-benchmark JSON."""
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchCheckError(f"benchmark file not found: {path}")
    except json.JSONDecodeError as error:
        raise BenchCheckError(f"invalid JSON in {path}: {error}")
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise BenchCheckError(f"{path} has no benchmarks")
    table: Dict[str, Dict[str, Any]] = {}
    for bench in benchmarks:
        name = bench.get("name")
        if name:
            table[name] = bench
    return table


def events_per_second(bench: Dict[str, Any]) -> Optional[float]:
    """A benchmark's throughput figure, or None when unmeasurable.

    Prefers the suite's own ``extra_info.events_per_second`` (real
    events processed per second); falls back to ``1 / stats.median``
    (iterations per second), which ranks identically under a ratio
    threshold.
    """
    extra = bench.get("extra_info") or {}
    eps = extra.get("events_per_second")
    if isinstance(eps, (int, float)) and eps > 0:
        return float(eps)
    stats = bench.get("stats") or {}
    median = stats.get("median")
    if isinstance(median, (int, float)) and median > 0:
        return 1.0 / median
    return None


def compare(
    baseline: Dict[str, Dict[str, Any]],
    fresh: Dict[str, Dict[str, Any]],
    threshold: float = 0.25,
    strict: Optional[Sequence[str]] = None,
    strict_threshold: float = 0.05,
) -> Tuple[List[Dict[str, Any]], List[str], List[str]]:
    """Compare throughput per benchmark name.

    Returns ``(comparisons, missing, extra)``: one comparison record per
    common name (with ``regressed`` set when fresh throughput fell below
    ``baseline * (1 - threshold)``), names only in the baseline, and
    names only in the fresh run.  Names listed in ``strict`` are gated
    at ``strict_threshold`` instead; each record carries the
    ``threshold`` actually applied and a ``strict`` flag.
    """
    strict_names = set(strict or ())
    comparisons: List[Dict[str, Any]] = []
    missing = sorted(set(baseline) - set(fresh))
    extra = sorted(set(fresh) - set(baseline))
    for name in sorted(set(baseline) & set(fresh)):
        base_eps = events_per_second(baseline[name])
        fresh_eps = events_per_second(fresh[name])
        if base_eps is None or fresh_eps is None:
            continue
        ratio = fresh_eps / base_eps
        is_strict = name in strict_names
        applied = strict_threshold if is_strict else threshold
        comparisons.append(
            {
                "name": name,
                "baseline_eps": base_eps,
                "fresh_eps": fresh_eps,
                "ratio": ratio,
                "strict": is_strict,
                "threshold": applied,
                "regressed": ratio < 1.0 - applied,
            }
        )
    return comparisons, missing, extra


def kernel_speedup_line(fresh: Dict[str, Dict[str, Any]]) -> Optional[str]:
    """One-line array-vs-dict kernel speedup summary, or None.

    Both full-replay kernel benches run the same columns through the
    same system configuration, so their throughput ratio is the
    eviction-core speedup on this machine.  Informational only — the
    per-bench thresholds above are the gate.
    """
    array = events_per_second(
        fresh.get("test_columnar_kernel_v2_replay_throughput", {})
    )
    dict_ = events_per_second(
        fresh.get("test_columnar_kernel_replay_throughput", {})
    )
    if not array or not dict_:
        return None
    return (
        f"kernel speedup: array {array:,.0f} eps vs dict {dict_:,.0f} eps "
        f"({array / dict_:.2f}x)"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark throughput regresses vs. the baseline"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("BENCH_micro.json"),
        help="committed baseline JSON (default: BENCH_micro.json)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="freshly produced benchmark JSON to gate",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional throughput drop (default: 0.25)",
    )
    parser.add_argument(
        "--strict",
        action="append",
        default=[],
        metavar="NAME",
        help=(
            "benchmark held to --strict-threshold instead (repeatable); "
            "a strict name missing from either file fails the gate"
        ),
    )
    parser.add_argument(
        "--strict-threshold",
        type=float,
        default=0.05,
        help="allowed fractional drop for --strict benchmarks (default: 0.05)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.threshold < 1.0:
        parser.error(f"--threshold must be in (0, 1), got {args.threshold}")
    if not 0.0 < args.strict_threshold < 1.0:
        parser.error(
            f"--strict-threshold must be in (0, 1), got {args.strict_threshold}"
        )

    try:
        baseline = load_benchmarks(args.baseline)
        fresh = load_benchmarks(args.fresh)
    except BenchCheckError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    comparisons, missing, extra = compare(
        baseline,
        fresh,
        args.threshold,
        strict=args.strict,
        strict_threshold=args.strict_threshold,
    )
    for name in missing:
        print(f"warning: benchmark only in baseline (skipped): {name}")
    for name in extra:
        print(f"warning: benchmark only in fresh run (skipped): {name}")
    if not comparisons:
        print("error: no common benchmarks to compare", file=sys.stderr)
        return 1

    absent_strict = sorted(
        set(args.strict) - {row["name"] for row in comparisons}
    )
    if absent_strict:
        print(
            "error: strict benchmark(s) missing from the comparison: "
            f"{', '.join(absent_strict)}",
            file=sys.stderr,
        )
        return 1

    regressions = 0
    for row in comparisons:
        marker = "REGRESSION" if row["regressed"] else "ok"
        tag = " [strict]" if row["strict"] else ""
        print(
            f"{marker:>10}  {row['name']}: "
            f"{row['baseline_eps']:,.0f} -> {row['fresh_eps']:,.0f} eps "
            f"({row['ratio']:.2%} of baseline, "
            f"threshold {row['threshold']:.0%}){tag}"
        )
        if row["regressed"]:
            regressions += 1
    if regressions:
        print(
            f"error: {regressions} benchmark(s) regressed beyond their "
            "threshold",
            file=sys.stderr,
        )
        return 1
    speedup = kernel_speedup_line(fresh)
    if speedup:
        print(speedup)
    print(f"bench gate passed: {len(comparisons)} benchmark(s) within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
