#!/usr/bin/env python
"""Tracing smoke: a traced slam run must produce a correlated timeline.

The CI ``spans-smoke`` leg (also ``make spans-smoke``)::

    PYTHONPATH=src python scripts/check_spans.py scenarios/smoke.json

* starts ``python -m repro serve <scenario> --spans <tmp>/server.jsonl``
  as a subprocess and waits for the bound port;
* slams it with the scenario's workload at ``--span-sample 1`` so every
  request carries an ``X-Repro-Trace`` header, writing one client span
  log per worker;
* sends SIGTERM, asserts a clean exit, and loads both sides' span logs;
* asserts the Dapper contract end to end:

  - every client span pairs with a server span of the same trace id
    whose parent is the client span id (no orphans either way among
    traced requests);
  - the client span count equals the slam report's request count
    (when no retries happened);
  - the ``cache.fetch`` child-span annotations, summed, reconcile
    exactly with the daemon's ``/stats`` lifetime hit/miss counters;
  - server-side root spans cover every request the daemon logged;

* runs the ``repro spans`` merger CLI over the same files and checks
  the exported Chrome trace is valid JSON with one named process track
  per participating process.

``--artifacts DIR`` copies the span logs and merged Chrome trace there
for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:  # runnable without PYTHONPATH too
    sys.path.insert(0, str(REPO_SRC))

from repro.obs.spans import (  # noqa: E402
    load_spans_jsonl,
    merge_spans,
)
from repro.serve import ServeConnection, load_scenario, run_slam  # noqa: E402
from repro.workloads.synthetic import make_workload  # noqa: E402

PORT_WAIT_S = 20.0
EXIT_WAIT_S = 10.0


def _fail(message: str) -> "SystemExit":
    print(f"FAIL: {message}")
    return SystemExit(1)


def _wait_for_port(port_file: Path, process: subprocess.Popen) -> int:
    deadline = time.monotonic() + PORT_WAIT_S
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise _fail(
                f"daemon exited early with code {process.returncode} "
                f"before announcing a port"
            )
        try:
            text = port_file.read_text(encoding="utf-8").strip()
        except OSError:
            text = ""
        if text:
            return int(text)
        time.sleep(0.05)
    raise _fail(f"daemon did not announce a port within {PORT_WAIT_S:.0f}s")


def _check_pairing(merged, report) -> None:
    if merged["client_only"]:
        raise _fail(
            f"{merged['client_only']} client span(s) found no server span "
            "with the same trace id — header propagation is broken"
        )
    for trace in merged["traces"]:
        client, server = trace["client"], trace["server"]
        if client is None:
            continue
        if server is None or not trace["paired"]:
            raise _fail(
                f"trace {trace['trace']} has a client span but no paired "
                "server span (server parent must equal the client span id)"
            )
        if server["parent"] != client["span"]:
            raise _fail(
                f"trace {trace['trace']}: server parent {server['parent']!r} "
                f"!= client span id {client['span']!r}"
            )
    if report.retries == 0 and merged["paired"] != report.requests:
        raise _fail(
            f"{merged['paired']} paired trace(s) but the slam report counted "
            f"{report.requests} request(s) with no retries"
        )
    print(
        f"pairing OK: {merged['paired']} paired trace(s), "
        f"{merged['server_only']} server-only (untraced endpoints)"
    )


def _check_cache_reconciliation(server_spans, stats) -> None:
    hits = misses = group_fetches = 0
    for span in server_spans:
        if span["name"] != "cache.fetch" and span["name"] != "cache.open":
            continue
        notes = span["annotations"]
        hits += int(notes.get("hits", 1 if notes.get("hit") else 0))
        if span["name"] == "cache.fetch":
            misses += int(notes.get("misses", 0))
        else:
            misses += 0 if notes.get("hit") else 1
        group_fetches += int(notes.get("group_fetches", 0))
    cache = stats["cache"]
    for name, from_spans in (
        ("hits", hits),
        ("misses", misses),
        ("group_fetches", group_fetches),
    ):
        served = int(cache[name])
        if from_spans != served:
            raise _fail(
                f"cache.{name} from span annotations is {from_spans} but the "
                f"daemon's /stats lifetime counter says {served}"
            )
    print(
        f"reconciliation OK: span annotations sum to hits={hits} "
        f"misses={misses} group_fetches={group_fetches}, matching /stats"
    )


def _check_chrome(path: Path) -> None:
    payload = json.loads(path.read_text(encoding="utf-8"))
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise _fail(f"{path} has no traceEvents")
    names = {
        event["args"]["name"]
        for event in events
        if event.get("ph") == "M" and event.get("name") == "process_name"
    }
    if len(names) < 2:
        raise _fail(
            f"Chrome trace names only {sorted(names)} — expected at least "
            "one slam worker and the daemon as separate process tracks"
        )
    spans = [event for event in events if event.get("ph") == "X"]
    for event in spans:
        for field in ("name", "pid", "tid", "ts", "dur"):
            if field not in event:
                raise _fail(f"Chrome span event is missing {field!r}: {event}")
    print(
        f"Chrome trace OK: {len(spans)} span event(s) across process "
        f"tracks {sorted(names)}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenario", type=Path, help="scenario file to serve")
    parser.add_argument("--events", type=int, default=4000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=None,
        help="copy span logs and the merged Chrome trace here (CI upload)",
    )
    args = parser.parse_args(argv)

    scenario = load_scenario(args.scenario)
    seed = scenario.seed if scenario.seed is not None else 0
    source = list(make_workload(scenario.workload, args.events, seed).file_ids())

    with tempfile.TemporaryDirectory(prefix="repro-spans-") as tmp:
        tmp_path = Path(tmp)
        port_file = tmp_path / "port"
        server_log = tmp_path / "server-spans.jsonl"
        client_dir = tmp_path / "client"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(args.scenario),
                "--port", "0", "--port-file", str(port_file),
                "--spans", str(server_log),
            ],
            env=env,
            cwd=str(REPO_ROOT),
        )
        try:
            port = _wait_for_port(port_file, process)
            url = f"http://127.0.0.1:{port}"
            print(f"daemon pid {process.pid} listening on {url}, tracing on")
            report = run_slam(
                url, source, workers=args.workers, batch=args.batch,
                span_dir=client_dir, span_sample=1,
            )
            if report.errors:
                raise _fail(f"slam reported {report.errors} request error(s)")
            conn = ServeConnection(url)
            try:
                stats = conn.stats()
            finally:
                conn.close()
            span_stats = stats.get("spans")
            if not span_stats or span_stats.get("schema") != "repro.span/1":
                raise _fail(f"/stats has no spans section: {span_stats!r}")
            if span_stats["dropped"]:
                raise _fail(
                    f"daemon dropped {span_stats['dropped']} span(s); raise "
                    "--span-capacity for this smoke"
                )
        finally:
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        try:
            exit_code = process.wait(timeout=EXIT_WAIT_S)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
            raise _fail(f"daemon ignored SIGTERM for {EXIT_WAIT_S:.0f}s")
        if exit_code != 0:
            raise _fail(f"daemon exited with code {exit_code} after SIGTERM")
        if not server_log.exists():
            raise _fail(f"daemon exited without writing {server_log}")

        client_files = sorted(client_dir.glob("spans-worker*.jsonl"))
        if len(client_files) != args.workers:
            raise _fail(
                f"expected {args.workers} client span log(s), "
                f"found {len(client_files)}"
            )
        client_spans = []
        for path in client_files:
            client_spans.extend(load_spans_jsonl(path)["spans"])
        loaded = load_spans_jsonl(server_log)
        server_spans = loaded["spans"]
        print(
            f"loaded {len(client_spans)} client span(s), "
            f"{len(server_spans)} server span(s) "
            f"(server buffer: {loaded['meta']['started']} started, "
            f"{loaded['meta']['dropped']} dropped)"
        )

        merged = merge_spans(client_spans, server_spans)
        _check_pairing(merged, report)
        _check_cache_reconciliation(server_spans, stats)

        chrome_out = tmp_path / "merged-trace.json"
        cli = subprocess.run(
            [
                sys.executable, "-m", "repro", "spans",
                "--client", *[str(path) for path in client_files],
                "--server", str(server_log),
                "--chrome", str(chrome_out),
                "--top", "3",
            ],
            env=env,
            cwd=str(REPO_ROOT),
        )
        if cli.returncode != 0:
            raise _fail(f"repro spans exited with code {cli.returncode}")
        _check_chrome(chrome_out)

        if args.artifacts is not None:
            args.artifacts.mkdir(parents=True, exist_ok=True)
            for path in [server_log, chrome_out, *client_files]:
                shutil.copy2(path, args.artifacts / path.name)
            print(f"copied artifacts to {args.artifacts}")

        print(
            f"OK: {report.events} events traced end to end, "
            f"{merged['paired']} correlated trace(s), "
            f"p99 {report.p99_ms:.3f}ms"
        )
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
